//! Multi-threaded Petri-net execution: a worker pool firing independent
//! transitions concurrently.
//!
//! The paper's Fig. 1 runs receptors, factories and emitters as separate
//! processes; [`super::Scheduler`] collapses that onto one thread. The
//! [`ParallelScheduler`] restores the parallelism for the factory layer: it
//! keeps the sequential scheduler as its factory registry (so one-worker
//! execution is *literally* the sequential code path, byte-identical
//! results included) and adds
//!
//! * a **dependency map** from input streams (places) to the factories
//!   reading them (transitions) — the Petri-net edges. It seeds the work
//!   queue when a basket grows and bounds the basket-expiry scan in
//!   [`ParallelScheduler::min_consumed`] to actual readers;
//! * a **work queue** of enabled factories. A factory travels to a worker
//!   as an owned `Box<dyn Factory>` moved out of its registry slot, so a
//!   transition can never fire on two threads at once — mutual exclusion
//!   by ownership instead of locks;
//! * a persistent **worker pool** (`DATACELL_WORKERS` / engine API). Each
//!   worker fires its factory until the firing condition fails, streaming
//!   window results back over a reply channel, then returns the factory;
//! * **quiescence detection**: the drain counts factories in flight and,
//!   every time the count hits zero, rescans for transitions enabled in
//!   the meantime (receptor threads append concurrently); only an empty
//!   rescan ends the drain — the same fixpoint the sequential
//!   `run_until_idle` reaches.
//!
//! Factories sharing a basket still see consistent oid-ordered reads: all
//! basket access goes through the shared-basket mutex, each factory
//! owns its private consumption cursor, and tuples are only expired
//! between drains (`&mut self` on the drain excludes `min_consumed`
//! callers at compile time), so a slower concurrent consumer can never
//! lose an unconsumed oid to garbage collection.
//!
//! The ingest edge is sharded ([`ShardedBasket`]): receptors append into
//! per-receptor staging shards, and the scheduler **seals** every basket
//! at each readiness scan, merging staged segments into the ordered view
//! before growth marks and firing conditions are evaluated. Factories
//! only ever read the sealed view, so the whole wake-up/GC machinery is
//! oblivious to how many receptors are appending concurrently; expiry
//! operates strictly below the sealed frontier and can never reclaim an
//! undrained shard.

use super::{Emission, FactoryId, Scheduler};
use crate::error::DataCellError;
use crate::factory::{Factory, FireOutcome};
use datacell_basket::{ShardedBasket, Timestamp};
use datacell_kernel::Oid;
use datacell_telemetry::{Counter, Gauge, Histogram};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Parse a `DATACELL_WORKERS`-style override: a positive worker count.
/// Returns `None` for unset, empty, non-numeric or zero values.
pub fn parse_workers(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Identifier of an externally-registered stream consumer — an egress-side
/// reader (network subscriber, emitter process) that is not a factory but
/// whose consumption cursor must still bound basket garbage collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConsumerId(pub usize);

impl std::fmt::Display for ConsumerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "consumer#{}", self.0)
    }
}

/// An external reader's GC stake in one stream: every oid below `cursor`
/// has been delivered to (or abandoned by) this consumer.
struct ExternalConsumer {
    stream: String,
    cursor: Oid,
}

/// Worker count from the `DATACELL_WORKERS` environment variable, falling
/// back to 1 (sequential) when unset or invalid.
pub fn workers_from_env() -> usize {
    parse_workers(std::env::var("DATACELL_WORKERS").ok().as_deref()).unwrap_or(1)
}

/// A transition dispatched to a worker: the factory is moved out of its
/// registry slot for the duration, which is what makes firing exclusive.
struct Job {
    id: FactoryId,
    factory: Box<dyn Factory>,
    clock: Timestamp,
    /// When the job entered the queue — the start of the wake-to-fire
    /// latency window. `None` under the telemetry kill switch.
    enqueued: Option<Instant>,
}

/// What workers send back to the draining thread.
enum Reply {
    /// A window result (streamed as produced, before the factory returns).
    Emission(Emission),
    /// The factory comes home; `progressed` reports whether any fire call
    /// consumed input or produced output (drives the requeue decision).
    Done {
        id: FactoryId,
        factory: Box<dyn Factory>,
        progressed: bool,
        error: Option<DataCellError>,
    },
}

/// The shared work queue: pending jobs plus a shutdown flag, under one
/// mutex so workers can sleep on the condvar until either changes.
struct WorkQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    /// Jobs pushed but not yet popped. The gauge handle is the
    /// scheduler's persistent one, so the reading always survives pool
    /// rebuilds; it is kept outside the mutex (atomics only), so the
    /// reading is monotone-consistent but momentarily ahead of/behind
    /// the queue by at most one in-flight push/pop.
    depth: Gauge,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl WorkQueue {
    fn new(depth: Gauge) -> WorkQueue {
        WorkQueue { state: Mutex::new(QueueState::default()), ready: Condvar::new(), depth }
    }

    fn push(&self, job: Job) {
        self.depth.inc();
        self.state.lock().expect("queue lock").jobs.push_back(job);
        self.ready.notify_one();
    }

    /// Block until a job is available or shutdown is signalled.
    fn pop(&self) -> Option<Job> {
        let mut g = self.state.lock().expect("queue lock");
        loop {
            if g.shutdown {
                return None;
            }
            if let Some(j) = g.jobs.pop_front() {
                self.depth.dec();
                return Some(j);
            }
            g = self.ready.wait(g).expect("queue lock");
        }
    }

    fn shutdown(&self) {
        self.state.lock().expect("queue lock").shutdown = true;
        self.ready.notify_all();
    }
}

/// Per-worker utilization counters, shared between the worker thread and
/// the scheduler (read by `Engine::telemetry_snapshot`). Fire counts are
/// unconditional; busy/idle time obeys the `DATACELL_TELEMETRY` kill
/// switch, like every timed signal.
#[derive(Default)]
pub struct WorkerStats {
    fires: Counter,
    busy_ns: Counter,
    idle_ns: Counter,
}

impl WorkerStats {
    /// Individual `Factory::fire` calls this worker executed.
    #[must_use]
    pub fn fires(&self) -> u64 {
        self.fires.get()
    }

    /// Nanoseconds spent firing factories (dispatch to factory-return).
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.get()
    }

    /// Nanoseconds spent waiting on the work queue between jobs. Recorded
    /// only when a wait actually yields a job — never while still blocked
    /// — so a quiesced pool reports stable totals between reads.
    #[must_use]
    pub fn idle_ns(&self) -> u64 {
        self.idle_ns.get()
    }
}

/// Persistent worker threads popping the shared queue. Lives across drains
/// so thread spawn cost is paid once per engine, not per scheduling round.
struct WorkerPool {
    queue: Arc<WorkQueue>,
    reply_rx: mpsc::Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
    /// One entry per worker thread, index-aligned with `handles`.
    stats: Vec<Arc<WorkerStats>>,
}

impl WorkerPool {
    fn new(size: usize, depth: Gauge, wake_to_fire: Histogram) -> WorkerPool {
        let queue = Arc::new(WorkQueue::new(depth));
        let (reply_tx, reply_rx) = mpsc::channel();
        let stats: Vec<Arc<WorkerStats>> =
            (0..size).map(|_| Arc::new(WorkerStats::default())).collect();
        let handles = (0..size)
            .map(|i| {
                let q = Arc::clone(&queue);
                let tx = reply_tx.clone();
                let st = Arc::clone(&stats[i]);
                let wake = wake_to_fire.clone();
                std::thread::Builder::new()
                    .name(format!("datacell-worker-{i}"))
                    .spawn(move || worker_loop(&q, &tx, &st, &wake))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { queue, reply_rx, handles, stats }
    }

    fn size(&self) -> usize {
        self.handles.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One worker: pop a factory, fire it until its firing condition fails,
/// stream emissions, hand the factory back. Emissions of one factory are
/// produced by exactly one worker per dispatch, so per-query result order
/// is preserved even though cross-query interleaving is nondeterministic.
///
/// A panicking factory must not kill the worker before it reports back —
/// the drain counts on one `Done` per dispatch for quiescence, so a lost
/// reply would deadlock `run_until_idle`. Panics are caught and surfaced
/// as drain errors (the sequential path propagates them instead; either
/// way the caller finds out).
fn worker_loop(
    queue: &WorkQueue,
    replies: &mpsc::Sender<Reply>,
    stats: &WorkerStats,
    wake_to_fire: &Histogram,
) {
    loop {
        let wait = datacell_telemetry::timer();
        let Some(Job { id, mut factory, clock, enqueued }) = queue.pop() else { return };
        stats.idle_ns.add_nanos_since(wait);
        wake_to_fire.record_since(enqueued);
        let busy = datacell_telemetry::timer();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fire_to_quiescence(id, &mut factory, clock, replies, &stats.fires)
        }));
        stats.busy_ns.add_nanos_since(busy);
        let (progressed, error) = match outcome {
            Ok(Ok(res)) => res,
            Ok(Err(SchedulerGone)) => return,
            Err(panic) => {
                let msg = panic_message(&panic);
                (false, Some(DataCellError::Unsupported(format!("factory {id} panicked: {msg}"))))
            }
        };
        if replies.send(Reply::Done { id, factory, progressed, error }).is_err() {
            return;
        }
    }
}

/// The drain side of the reply channel hung up; stop the worker.
struct SchedulerGone;

/// Fire `factory` until its firing condition fails, streaming produced
/// windows. Returns `(progressed, first_error)`.
fn fire_to_quiescence(
    id: FactoryId,
    factory: &mut Box<dyn Factory>,
    clock: Timestamp,
    replies: &mpsc::Sender<Reply>,
    fires: &Counter,
) -> Result<(bool, Option<DataCellError>), SchedulerGone> {
    let mut progressed = false;
    while factory.ready(clock) {
        fires.inc();
        match factory.fire(clock) {
            Ok(FireOutcome::Produced { result, metrics }) => {
                progressed = true;
                if replies
                    .send(Reply::Emission(Emission { factory: id, result, at: clock, metrics }))
                    .is_err()
                {
                    return Err(SchedulerGone);
                }
            }
            Ok(FireOutcome::Progressed) => progressed = true,
            Ok(FireOutcome::NotReady) => break,
            Err(e) => return Ok((progressed, Some(e))),
        }
    }
    Ok((progressed, None))
}

/// Best-effort text of a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// A Petri-net scheduler that fires independent transitions on a pool of
/// worker threads. Wraps the sequential [`Scheduler`] as its registry;
/// with `workers == 1` every drain runs the sequential code path
/// unchanged, so determinism-sensitive callers pin one worker.
pub struct ParallelScheduler {
    inner: Scheduler,
    /// Petri-net edges: stream (place) → ids of factories reading it.
    deps: HashMap<String, Vec<FactoryId>>,
    /// Sharded write handle per input stream. The scheduler both polls it
    /// for growth between scans and *seals* it — staged shard segments
    /// are merged into the ordered view on every scan, which is what
    /// makes concurrent receptor appends visible to firing conditions.
    baskets: HashMap<String, ShardedBasket>,
    /// `end_oid` observed at the last candidate scan; a basket whose end
    /// moved past its mark wakes its readers via `deps`.
    marks: HashMap<String, Oid>,
    /// Factories registered since the last drain (always scanned once).
    fresh: Vec<FactoryId>,
    /// Clock of the last scan; a clock change re-enables time-based
    /// transitions, so it forces a full readiness scan.
    last_clock: Option<Timestamp>,
    /// External (non-factory) consumers holding GC stakes on streams —
    /// the egress edge's registration hook. Keyed by [`ConsumerId`];
    /// eviction removes the stake so one dead subscriber can never pin
    /// [`ParallelScheduler::min_consumed`] (and thus basket growth)
    /// forever.
    consumers: HashMap<ConsumerId, ExternalConsumer>,
    /// Next consumer id (never reused, so a stale handle can't alias a
    /// later registration).
    next_consumer: usize,
    workers: usize,
    pool: Option<WorkerPool>,
    /// Work-queue depth (jobs dispatched, not yet popped). Persistent
    /// across pool rebuilds; always 0 when the scheduler is quiesced.
    queue_depth: Gauge,
    /// Wake-to-fire latency: time a dispatched job spent in the queue
    /// before a worker picked it up. Persistent across pool rebuilds.
    wake_to_fire: Histogram,
}

impl Default for ParallelScheduler {
    fn default() -> Self {
        ParallelScheduler::new(1)
    }
}

impl ParallelScheduler {
    /// An empty scheduler with the given worker count (min 1).
    pub fn new(workers: usize) -> ParallelScheduler {
        ParallelScheduler {
            inner: Scheduler::new(),
            deps: HashMap::new(),
            baskets: HashMap::new(),
            marks: HashMap::new(),
            fresh: Vec::new(),
            last_clock: None,
            consumers: HashMap::new(),
            next_consumer: 0,
            workers: workers.max(1),
            pool: None,
            queue_depth: Gauge::new(),
            wake_to_fire: Histogram::new(),
        }
    }

    /// Current depth of the shared work queue: transitions dispatched to
    /// the pool but not yet picked up by a worker. Always 0 between
    /// drains (quiescence means nothing is queued or in flight).
    #[must_use]
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.get()
    }

    /// Wake-to-fire latency distribution: time each dispatched job spent
    /// in the work queue before a worker popped it. Empty when the
    /// telemetry kill switch is on or no pooled drain has run.
    #[must_use]
    pub fn wake_to_fire(&self) -> datacell_telemetry::HistogramSnapshot {
        self.wake_to_fire.snapshot()
    }

    /// Per-worker utilization counters for the live pool, index-aligned
    /// with worker ids. Empty on the sequential one-worker path (no pool)
    /// or before the first pooled drain.
    #[must_use]
    pub fn worker_stats(&self) -> Vec<Arc<WorkerStats>> {
        self.pool.as_ref().map(|p| p.stats.clone()).unwrap_or_default()
    }

    /// Current worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Change the worker count; takes effect on the next drain (the pool
    /// is rebuilt lazily).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Register a factory, recording its Petri-net input edges.
    /// `basket_of` resolves each of the factory's input streams to its
    /// sharded write handle (the engine passes its basket registry).
    pub fn register(
        &mut self,
        f: Box<dyn Factory>,
        mut basket_of: impl FnMut(&str) -> Option<ShardedBasket>,
    ) -> FactoryId {
        let streams = f.input_streams();
        let id = self.inner.register(f);
        for s in streams {
            if let Some(b) = basket_of(&s) {
                // Mark at the current end so only *future* growth fires
                // the stream's wake-up edge. The factory's own cursor may
                // start below the mark (resident backlog at `base_oid`);
                // the `fresh` list guarantees the one readiness check that
                // dispatches it, and the dispatch drains to quiescence.
                self.marks.entry(s.clone()).or_insert_with(|| b.end_oid());
                self.baskets.entry(s.clone()).or_insert(b);
            }
            self.deps.entry(s).or_default().push(id);
        }
        self.fresh.push(id);
        id
    }

    /// Remove a factory and its dependency edges.
    pub fn deregister(&mut self, id: FactoryId) -> Result<(), DataCellError> {
        self.inner.deregister(id)?;
        self.deps.retain(|_, readers| {
            readers.retain(|&r| r != id);
            !readers.is_empty()
        });
        self.baskets.retain(|s, _| self.deps.contains_key(s));
        self.marks.retain(|s, _| self.deps.contains_key(s));
        self.fresh.retain(|&r| r != id);
        Ok(())
    }

    /// Access a factory.
    pub fn factory(&self, id: FactoryId) -> Result<&dyn Factory, DataCellError> {
        self.inner.factory(id)
    }

    /// Mutable access to a factory.
    pub fn factory_mut(&mut self, id: FactoryId) -> Result<&mut Box<dyn Factory>, DataCellError> {
        self.inner.factory_mut(id)
    }

    /// Ids of all live factories.
    pub fn ids(&self) -> Vec<FactoryId> {
        self.inner.ids()
    }

    /// Is any factory enabled?
    pub fn any_ready(&self, clock: Timestamp) -> bool {
        self.inner.any_ready(clock)
    }

    /// Ids of the factories reading `stream` (the Petri-net edge set).
    pub fn readers(&self, stream: &str) -> &[FactoryId] {
        self.deps.get(stream).map_or(&[], Vec::as_slice)
    }

    /// Minimum consumed position across the factories that read `stream`
    /// (`None` when no live factory reads it) — the basket expiry bound.
    ///
    /// Race-free by construction: the borrow checker excludes calls while
    /// a drain (`&mut self`) has factories out on worker threads, so the
    /// bound always reflects fully-settled cursors and can never expire a
    /// tuple a mid-fire consumer still needs. The dependency map keeps the
    /// scan to actual readers instead of every registered factory.
    ///
    /// Shard-aware by construction: cursors live in the *sealed* view, so
    /// the bound is always ≤ the basket's sealed `end_oid`, and staged
    /// (undrained) shard segments — which sit at or past that frontier —
    /// are out of expiry's reach entirely.
    pub fn min_consumed(&self, stream: &str) -> Option<Oid> {
        let factories = self
            .deps
            .get(stream)
            .into_iter()
            .flatten()
            .filter_map(|&id| self.inner.factory(id).ok().and_then(|f| f.consumed_upto(stream)))
            .min();
        let consumers =
            self.consumers.values().filter(|c| c.stream == stream).map(|c| c.cursor).min();
        match (factories, consumers) {
            (Some(f), Some(c)) => Some(f.min(c)),
            (f, c) => f.or(c),
        }
    }

    // -- external consumers (egress-side GC stakes) -------------------------

    /// Register an external consumer of `stream` whose delivery cursor
    /// starts at `from`: every oid at or past `from` is retained by basket
    /// GC until [`ParallelScheduler::advance_consumer`] moves the cursor
    /// over it. The network edge registers one consumer per subscriber so
    /// undelivered results survive in their emitter basket; factories are
    /// unaffected (consumers never fire).
    pub fn register_consumer(&mut self, stream: &str, from: Oid) -> ConsumerId {
        let id = ConsumerId(self.next_consumer);
        self.next_consumer += 1;
        self.consumers.insert(id, ExternalConsumer { stream: stream.to_owned(), cursor: from });
        id
    }

    /// Move a consumer's delivery cursor forward (monotone: a stale or
    /// backwards `upto` is a no-op). Tuples below the new cursor become
    /// eligible for expiry once every other stake agrees.
    pub fn advance_consumer(&mut self, id: ConsumerId, upto: Oid) -> Result<(), DataCellError> {
        let c = self
            .consumers
            .get_mut(&id)
            .ok_or_else(|| DataCellError::Unsupported(format!("unknown {id}")))?;
        if upto > c.cursor {
            c.cursor = upto;
        }
        Ok(())
    }

    /// Remove a consumer's GC stake entirely — the expiry/eviction rule
    /// for disconnected or overflowed subscribers. Returns the stream it
    /// was reading. After eviction [`ParallelScheduler::min_consumed`] is
    /// computed from the surviving readers only, so GC resumes instead of
    /// staying pinned at the dead consumer's last cursor forever.
    pub fn evict_consumer(&mut self, id: ConsumerId) -> Result<String, DataCellError> {
        self.consumers
            .remove(&id)
            .map(|c| c.stream)
            .ok_or_else(|| DataCellError::Unsupported(format!("unknown {id}")))
    }

    /// A consumer's current cursor (`None` after eviction).
    #[must_use]
    pub fn consumer_cursor(&self, id: ConsumerId) -> Option<Oid> {
        self.consumers.get(&id).map(|c| c.cursor)
    }

    /// How many external consumers hold a stake on `stream`.
    #[must_use]
    pub fn consumers_of(&self, stream: &str) -> usize {
        self.consumers.values().filter(|c| c.stream == stream).count()
    }

    /// Run until no factory is enabled, firing independent transitions on
    /// the worker pool. With one worker this *is* the sequential
    /// scheduler's `run_until_idle` — identical code path and results.
    pub fn run_until_idle(&mut self, clock: Timestamp) -> Result<Vec<Emission>, DataCellError> {
        if self.workers <= 1 {
            // A pool left over from a >1-worker phase would otherwise park
            // its threads for the scheduler's lifetime.
            self.pool = None;
            // Publish staged shard segments so the sequential drain's
            // firing conditions see everything receptors delivered.
            self.publish_baskets();
            // Keep growth marks coherent for a later switch to >1 workers:
            // snapshot *before* draining, so anything the drain leaves
            // unprocessed (or that arrives during it) stays past a mark.
            self.refresh_marks(clock);
            return self.inner.run_until_idle(clock).inspect_err(|_| self.reset_scan_state());
        }
        self.run_pooled(clock)
    }

    /// Seal every registered basket: merge staged shard segments into the
    /// ordered view factories read. A no-op for single-shard baskets.
    /// Called before every readiness scan, so the staged→sealed hop is
    /// the only latency a sharded receptor append adds.
    fn publish_baskets(&self) {
        for b in self.baskets.values() {
            b.seal();
        }
    }

    /// Forget all scan bookkeeping after an aborted drain so the next
    /// drain rechecks every transition from scratch (an abort leaves
    /// enabled factories behind that no growth mark would rediscover).
    fn reset_scan_state(&mut self) {
        self.marks.clear();
        self.last_clock = None;
        self.fresh = self.inner.ids();
    }

    /// Advance all growth marks to the current basket ends and record the
    /// scan clock. Everything at or past a mark will be rechecked.
    fn refresh_marks(&mut self, clock: Timestamp) {
        for (s, b) in &self.baskets {
            self.marks.insert(s.clone(), b.end_oid());
        }
        self.last_clock = Some(clock);
        self.fresh.clear();
    }

    /// Transitions to (re)check for readiness: fresh registrations, the
    /// readers of every basket that grew past its mark and — when the
    /// clock moved — every factory (time-based firing conditions).
    /// Staged shard segments are sealed first, so both the growth marks
    /// and the readiness checks see every tuple delivered so far.
    fn scan_candidates(&mut self, clock: Timestamp) -> Vec<FactoryId> {
        self.publish_baskets();
        let mut cand: BTreeSet<FactoryId> = self.fresh.drain(..).collect();
        if self.last_clock != Some(clock) {
            cand.extend(self.inner.ids());
            self.refresh_marks(clock);
        } else {
            for (s, b) in &self.baskets {
                let end = b.end_oid();
                // `marks` is kept key-synchronized with `baskets` by
                // register/deregister, so no allocating entry() fallback
                // on this per-dispatch path.
                let mark = self.marks.get_mut(s).expect("mark exists for every basket");
                if end > *mark {
                    *mark = end;
                    if let Some(readers) = self.deps.get(s) {
                        cand.extend(readers.iter().copied());
                    }
                }
            }
        }
        cand.into_iter()
            .filter(|&id| self.inner.factory(id).is_ok_and(|f| f.ready(clock)))
            .collect()
    }

    /// The parallel drain: dispatch enabled transitions, collect replies,
    /// requeue transitions that stayed enabled, and declare quiescence
    /// only after an empty rescan with nothing in flight.
    fn run_pooled(&mut self, clock: Timestamp) -> Result<Vec<Emission>, DataCellError> {
        if self.pool.as_ref().map(WorkerPool::size) != Some(self.workers) {
            self.pool = None; // drop (joins old threads) before respawning
            self.pool = Some(WorkerPool::new(
                self.workers,
                self.queue_depth.clone(),
                self.wake_to_fire.clone(),
            ));
        }

        let mut emissions = Vec::new();
        let mut outstanding = 0usize;
        let mut first_err: Option<DataCellError> = None;

        loop {
            if outstanding == 0 {
                if first_err.is_some() {
                    break;
                }
                // Quiescence candidate: rescan to catch transitions a
                // concurrent receptor enabled since the last scan.
                outstanding += self.dispatch_candidates(clock);
                if outstanding == 0 {
                    break; // fixpoint: nothing enabled, nothing in flight
                }
            }
            let reply = self.pool.as_ref().expect("pool exists").reply_rx.recv();
            match reply {
                Ok(Reply::Emission(e)) => emissions.push(e),
                Ok(Reply::Done { id, factory, progressed, error }) => {
                    outstanding -= 1;
                    // Re-check before the slot swallows the box: a
                    // receptor may have refilled the basket mid-fire.
                    let rearm = error.is_none() && progressed && factory.ready(clock);
                    self.inner.restore_slot(id, factory);
                    if let Some(e) = error {
                        first_err.get_or_insert(e);
                    } else if first_err.is_none() {
                        if rearm {
                            let factory = self.inner.take_slot(id).expect("just restored");
                            self.pool.as_ref().expect("pool exists").queue.push(Job {
                                id,
                                factory,
                                clock,
                                enqueued: datacell_telemetry::timer(),
                            });
                            outstanding += 1;
                        }
                        // Also wake transitions enabled mid-drain: without
                        // this, one busy factory rearming forever would
                        // keep `outstanding > 0` and starve every factory
                        // a receptor enabled after the initial scan, while
                        // the other workers sit idle. (In-flight factories
                        // whose streams grew are covered by the rearm
                        // check above, so consuming their growth marks
                        // here loses nothing.)
                        outstanding += self.dispatch_candidates(clock);
                    }
                }
                Err(_) => {
                    first_err.get_or_insert(DataCellError::Unsupported(
                        "scheduler worker pool disconnected".into(),
                    ));
                    break;
                }
            }
        }

        if let Some(e) = first_err {
            self.reset_scan_state();
            return Err(e);
        }
        Ok(emissions)
    }

    /// Scan for enabled transitions and push every one whose factory is
    /// in its slot (not already in flight) onto the work queue. Returns
    /// how many jobs were dispatched.
    fn dispatch_candidates(&mut self, clock: Timestamp) -> usize {
        let mut dispatched = 0;
        for id in self.scan_candidates(clock) {
            if let Some(factory) = self.inner.take_slot(id) {
                self.pool.as_ref().expect("pool exists").queue.push(Job {
                    id,
                    factory,
                    clock,
                    enqueued: datacell_telemetry::timer(),
                });
                dispatched += 1;
            }
        }
        dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::StreamInput;
    use crate::metrics::SlideMetrics;
    use datacell_basket::Basket;
    use datacell_kernel::{Column, DataType};
    use datacell_plan::ResultSet;

    fn shared(name: &str) -> ShardedBasket {
        ShardedBasket::new(Basket::new(name, &[("x", DataType::Int)]), 1)
    }

    /// A factory that consumes `step`-sized batches from one stream and
    /// emits their sum — enough behaviour to exercise scheduling.
    struct SumFactory {
        label: String,
        input: StreamInput,
        step: usize,
        metrics: Vec<SlideMetrics>,
    }

    impl SumFactory {
        fn new(label: &str, basket: ShardedBasket, step: usize) -> SumFactory {
            SumFactory {
                label: label.into(),
                input: StreamInput::new(label, basket.shared()),
                step,
                metrics: vec![],
            }
        }
    }

    impl Factory for SumFactory {
        fn label(&self) -> &str {
            &self.label
        }

        fn ready(&self, _clock: Timestamp) -> bool {
            self.input.available() >= self.step
        }

        fn fire(&mut self, _clock: Timestamp) -> Result<FireOutcome, DataCellError> {
            let w = self.input.take(self.step)?;
            let sum: i64 = w.col(0).unwrap().as_int().unwrap().iter().sum();
            let result = ResultSet::new(vec!["sum".into()], vec![Column::Int(vec![sum])]).unwrap();
            Ok(FireOutcome::Produced { result, metrics: SlideMetrics::default() })
        }

        fn consumed_upto(&self, stream: &str) -> Option<Oid> {
            (stream == self.input.name).then_some(self.input.consumed)
        }

        fn input_streams(&self) -> Vec<String> {
            vec![self.input.name.clone()]
        }

        fn metrics(&self) -> &[SlideMetrics] {
            &self.metrics
        }
    }

    /// A factory whose fire always fails (error-path testing).
    struct FailingFactory {
        input: StreamInput,
    }

    impl Factory for FailingFactory {
        fn label(&self) -> &str {
            "fail"
        }

        fn ready(&self, _clock: Timestamp) -> bool {
            self.input.available() > 0
        }

        fn fire(&mut self, _clock: Timestamp) -> Result<FireOutcome, DataCellError> {
            Err(DataCellError::Unsupported("boom".into()))
        }

        fn consumed_upto(&self, stream: &str) -> Option<Oid> {
            (stream == self.input.name).then_some(self.input.consumed)
        }

        fn input_streams(&self) -> Vec<String> {
            vec![self.input.name.clone()]
        }

        fn metrics(&self) -> &[SlideMetrics] {
            &[]
        }
    }

    fn ints(n: usize, v: i64) -> Vec<Column> {
        vec![Column::Int(vec![v; n])]
    }

    #[test]
    fn parse_workers_accepts_positive_counts() {
        assert_eq!(parse_workers(None), None);
        assert_eq!(parse_workers(Some("")), None);
        assert_eq!(parse_workers(Some("zero")), None);
        assert_eq!(parse_workers(Some("0")), None);
        assert_eq!(parse_workers(Some("1")), Some(1));
        assert_eq!(parse_workers(Some(" 8 ")), Some(8));
    }

    #[test]
    fn pooled_drain_matches_sequential_results() {
        // Same workload through 1 worker (sequential path) and 4 workers;
        // per-factory emissions must be identical.
        let run = |workers: usize| {
            let mut s = ParallelScheduler::new(workers);
            let baskets: Vec<ShardedBasket> = (0..3).map(|i| shared(&format!("s{i}"))).collect();
            let mut ids = Vec::new();
            for (i, b) in baskets.iter().enumerate() {
                let f = SumFactory::new(&format!("s{i}"), b.clone(), 2);
                let bc = b.clone();
                ids.push(s.register(Box::new(f), |_| Some(bc.clone())));
            }
            for (i, b) in baskets.iter().enumerate() {
                b.append(&ints(6, i as i64 + 1), 0).unwrap();
            }
            let emissions = s.run_until_idle(0).unwrap();
            let mut per: HashMap<FactoryId, Vec<Vec<Vec<datacell_kernel::Value>>>> = HashMap::new();
            for e in emissions {
                per.entry(e.factory).or_default().push(e.result.rows());
            }
            assert!(!s.any_ready(0));
            (ids, per)
        };
        let (ids1, seq) = run(1);
        let (ids4, par) = run(4);
        assert_eq!(ids1, ids4);
        for id in ids1 {
            assert_eq!(seq.get(&id), par.get(&id), "factory {id} diverged");
            assert_eq!(seq[&id].len(), 3); // 6 tuples / step 2
        }
    }

    #[test]
    fn growth_marks_wake_only_readers_and_requeue_drains_backlog() {
        let mut s = ParallelScheduler::new(2);
        let a = shared("a");
        let b = shared("b");
        let (ac, bc) = (a.clone(), b.clone());
        let fa =
            s.register(Box::new(SumFactory::new("a", a.clone(), 1)), move |_| Some(ac.clone()));
        let fb =
            s.register(Box::new(SumFactory::new("b", b.clone(), 1)), move |_| Some(bc.clone()));
        assert_eq!(s.readers("a"), &[fa]);
        assert_eq!(s.readers("b"), &[fb]);

        a.append(&ints(4, 1), 0).unwrap();
        let e = s.run_until_idle(0).unwrap();
        assert_eq!(e.len(), 4);
        assert!(e.iter().all(|e| e.factory == fa));

        // Quiescent; now only b grows — only fb fires.
        b.append(&ints(2, 7), 0).unwrap();
        let e = s.run_until_idle(0).unwrap();
        assert_eq!(e.len(), 2);
        assert!(e.iter().all(|e| e.factory == fb));

        // Nothing new: immediate quiescence.
        assert!(s.run_until_idle(0).unwrap().is_empty());
    }

    #[test]
    fn staged_shard_appends_wake_readers_on_both_worker_paths() {
        // Receptor appends that are still *staged* (unsealed) at drain
        // time must be published by the scheduler's own seal step and
        // fire their readers — on the sequential path and on the pool.
        for workers in [1usize, 3] {
            let mut s = ParallelScheduler::new(workers);
            let b = ShardedBasket::new(Basket::new("s", &[("x", DataType::Int)]), 4);
            let bc = b.clone();
            let id =
                s.register(Box::new(SumFactory::new("s", b.clone(), 2)), move |_| Some(bc.clone()));
            // Simulate two receptors: both appends stay staged.
            b.append_shard(0, &ints(2, 5), 0).unwrap();
            b.append_shard(1, &ints(2, 7), 0).unwrap();
            assert_eq!(b.len(), 0);
            assert_eq!(b.staged_len(), 4);
            let e = s.run_until_idle(0).unwrap();
            assert_eq!(e.len(), 2, "workers={workers}");
            assert!(e.iter().all(|e| e.factory == id));
            assert_eq!(b.staged_len(), 0);
            assert_eq!(b.len(), 4);
            // Quiescent again: staged growth after the drain re-arms the
            // growth mark via the next drain's seal.
            b.append_shard(3, &ints(2, 1), 0).unwrap();
            assert_eq!(s.run_until_idle(0).unwrap().len(), 1, "workers={workers}");
        }
    }

    #[test]
    fn min_consumed_uses_dependency_edges() {
        let mut s = ParallelScheduler::new(2);
        let b = shared("s");
        let (b1, b2) = (b.clone(), b.clone());
        let fast =
            s.register(Box::new(SumFactory::new("s", b.clone(), 1)), move |_| Some(b1.clone()));
        let _slow =
            s.register(Box::new(SumFactory::new("s", b.clone(), 4)), move |_| Some(b2.clone()));
        b.append(&ints(6, 1), 0).unwrap();
        s.run_until_idle(0).unwrap();
        // fast consumed 6; slow consumed 4 (one step, 2 left over).
        assert_eq!(s.min_consumed("s"), Some(4));
        assert_eq!(s.min_consumed("ghost"), None);
        s.deregister(fast).unwrap();
        assert_eq!(s.min_consumed("s"), Some(4));
        assert_eq!(s.readers("s").len(), 1);
    }

    #[test]
    fn external_consumer_bounds_gc_until_evicted() {
        // The satellite-3 regression shape: a stalled external consumer
        // (a dead network subscriber) must pin the expiry bound only
        // until it is evicted, never forever.
        let mut s = ParallelScheduler::new(2);
        let b = shared("s");
        let bc = b.clone();
        let _f =
            s.register(Box::new(SumFactory::new("s", b.clone(), 1)), move |_| Some(bc.clone()));
        let live = s.register_consumer("s", 0);
        let dead = s.register_consumer("s", 0);
        assert_eq!(s.consumers_of("s"), 2);
        b.append(&ints(6, 1), 0).unwrap();
        s.run_until_idle(0).unwrap();
        // The factory consumed all 6; both consumers still sit at 0, so
        // the bound is pinned at the slowest stake.
        assert_eq!(s.min_consumed("s"), Some(0));
        s.advance_consumer(live, 6).unwrap();
        assert_eq!(s.consumer_cursor(live), Some(6));
        // The dead consumer alone keeps the bound at 0 ...
        assert_eq!(s.min_consumed("s"), Some(0));
        // ... until eviction removes its stake and GC resumes.
        assert_eq!(s.evict_consumer(dead).unwrap(), "s");
        assert_eq!(s.min_consumed("s"), Some(6));
        assert_eq!(s.consumers_of("s"), 1);
        // Cursor moves are monotone; stale advances are no-ops.
        s.advance_consumer(live, 3).unwrap();
        assert_eq!(s.consumer_cursor(live), Some(6));
        // Stale handles error out instead of silently re-pinning.
        assert!(s.advance_consumer(dead, 9).is_err());
        assert!(s.evict_consumer(dead).is_err());
        assert_eq!(s.consumer_cursor(dead), None);
    }

    #[test]
    fn consumer_only_stream_has_a_gc_bound() {
        // Emitter baskets have no factory readers at all: the consumer
        // stakes alone must produce a bound (previously `min_consumed`
        // required a factory edge and returned None).
        let mut s = ParallelScheduler::new(1);
        assert_eq!(s.min_consumed("out"), None);
        let c = s.register_consumer("out", 0);
        assert_eq!(s.min_consumed("out"), Some(0));
        s.advance_consumer(c, 10).unwrap();
        assert_eq!(s.min_consumed("out"), Some(10));
        s.evict_consumer(c).unwrap();
        assert_eq!(s.min_consumed("out"), None);
    }

    #[test]
    fn factory_error_aborts_drain_and_recovers() {
        let mut s = ParallelScheduler::new(2);
        let good = shared("g");
        let bad = shared("x");
        let (gc, xc) = (good.clone(), bad.clone());
        let fg =
            s.register(Box::new(SumFactory::new("g", good.clone(), 1)), move |_| Some(gc.clone()));
        let fx = s.register(
            Box::new(FailingFactory { input: StreamInput::new("x", bad.shared()) }),
            move |_| Some(xc.clone()),
        );
        good.append(&ints(2, 1), 0).unwrap();
        bad.append(&ints(1, 1), 0).unwrap();
        let err = s.run_until_idle(0).unwrap_err();
        assert!(matches!(err, DataCellError::Unsupported(_)));
        // Both factories are back in their slots and the scheduler is
        // usable. As on the sequential error path, emissions produced
        // before the abort are discarded but their input stays consumed:
        assert!(s.factory(fg).is_ok());
        assert_eq!(s.min_consumed("g"), Some(2));
        // Dropping the failing transition lets fresh input drain normally.
        s.deregister(fx).unwrap();
        good.append(&ints(1, 2), 0).unwrap();
        let e = s.run_until_idle(0).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].factory, fg);
    }

    /// A factory that panics on fire (worker panic-safety testing).
    struct PanickingFactory {
        input: StreamInput,
    }

    impl Factory for PanickingFactory {
        fn label(&self) -> &str {
            "panic"
        }

        fn ready(&self, _clock: Timestamp) -> bool {
            self.input.available() > 0
        }

        fn fire(&mut self, _clock: Timestamp) -> Result<FireOutcome, DataCellError> {
            panic!("factory exploded");
        }

        fn consumed_upto(&self, stream: &str) -> Option<Oid> {
            (stream == self.input.name).then_some(self.input.consumed)
        }

        fn input_streams(&self) -> Vec<String> {
            vec![self.input.name.clone()]
        }

        fn metrics(&self) -> &[SlideMetrics] {
            &[]
        }
    }

    #[test]
    fn panicking_factory_surfaces_as_error_not_deadlock() {
        let mut s = ParallelScheduler::new(2);
        let b = shared("x");
        let bc = b.clone();
        let id = s.register(
            Box::new(PanickingFactory { input: StreamInput::new("x", b.shared()) }),
            move |_| Some(bc.clone()),
        );
        b.append(&ints(1, 1), 0).unwrap();
        let err = s.run_until_idle(0).unwrap_err();
        assert!(err.to_string().contains("panicked"), "got: {err}");
        // The factory's slot is intact and the pool still drains others.
        assert!(s.factory(id).is_ok());
        s.deregister(id).unwrap();
        let g = shared("g");
        let gc = g.clone();
        let ok =
            s.register(Box::new(SumFactory::new("g", g.clone(), 1)), move |_| Some(gc.clone()));
        g.append(&ints(2, 3), 0).unwrap();
        let e = s.run_until_idle(0).unwrap();
        assert_eq!(e.len(), 2);
        assert!(e.iter().all(|e| e.factory == ok));
    }

    #[test]
    fn sequential_error_does_not_strand_backlog_after_worker_switch() {
        // workers=1 drain errors; the surviving factory's backlog must
        // still be rediscovered by the next (now pooled) drain even with
        // no new appends and an unchanged clock.
        let mut s = ParallelScheduler::new(1);
        let good = shared("g");
        let bad = shared("x");
        let (gc, xc) = (good.clone(), bad.clone());
        // The failing factory gets the lower id so the sequential round
        // aborts before ever firing the good one.
        let fx = s.register(
            Box::new(FailingFactory { input: StreamInput::new("x", bad.shared()) }),
            move |_| Some(xc.clone()),
        );
        let fg =
            s.register(Box::new(SumFactory::new("g", good.clone(), 2)), move |_| Some(gc.clone()));
        good.append(&ints(2, 1), 0).unwrap();
        bad.append(&ints(1, 1), 0).unwrap();
        assert!(s.run_until_idle(0).is_err());
        // fg is still enabled but its stream sits exactly at its growth
        // mark; only the error-path bookkeeping reset rediscovers it.
        s.deregister(fx).unwrap();
        s.set_workers(2);
        let e = s.run_until_idle(0).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].factory, fg);
    }

    #[test]
    fn worker_count_is_switchable_between_drains() {
        let mut s = ParallelScheduler::new(1);
        let b = shared("s");
        let bc = b.clone();
        let id =
            s.register(Box::new(SumFactory::new("s", b.clone(), 1)), move |_| Some(bc.clone()));
        b.append(&ints(3, 1), 0).unwrap();
        assert_eq!(s.run_until_idle(0).unwrap().len(), 3);
        s.set_workers(3);
        assert_eq!(s.workers(), 3);
        b.append(&ints(5, 1), 0).unwrap();
        let e = s.run_until_idle(0).unwrap();
        assert_eq!(e.len(), 5);
        assert!(e.iter().all(|e| e.factory == id));
        s.set_workers(0); // clamped
        assert_eq!(s.workers(), 1);
        b.append(&ints(1, 1), 0).unwrap();
        assert_eq!(s.run_until_idle(0).unwrap().len(), 1);
    }

    #[test]
    fn shared_basket_consumers_fire_concurrently_without_loss() {
        // Two transitions on one place at different speeds, four workers:
        // every oid must be summed exactly once per factory.
        let mut s = ParallelScheduler::new(4);
        let b = shared("s");
        let (b1, b2) = (b.clone(), b.clone());
        let f1 =
            s.register(Box::new(SumFactory::new("s", b.clone(), 1)), move |_| Some(b1.clone()));
        let f2 =
            s.register(Box::new(SumFactory::new("s", b.clone(), 5)), move |_| Some(b2.clone()));
        for _ in 0..8 {
            b.append(&[Column::Int((0..5).collect())], 0).unwrap();
            s.run_until_idle(0).unwrap();
            // Between drains the expiry bound is settled and safe.
            let upto = s.min_consumed("s").unwrap();
            b.with(|bk| bk.expire_upto(upto));
        }
        b.append(&[Column::Int((0..5).collect())], 0).unwrap();
        let e = s.run_until_idle(0).unwrap();
        let sum = |id: FactoryId| -> i64 {
            e.iter()
                .filter(|e| e.factory == id)
                .map(|e| e.result.rows()[0][0].as_i64().unwrap())
                .sum()
        };
        // Last drain: f1 sums 5 fresh tuples (0+1+2+3+4), f2 one window.
        assert_eq!(sum(f1), 10);
        assert_eq!(sum(f2), 10);
    }
}
