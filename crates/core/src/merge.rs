//! Merging partial results — the `concat` + compensation machinery.
//!
//! "The simplest case are operators where a simple concatenation of the
//! partial results forms the correct complete result. [...] The next
//! category consists of operations that can be replicated as-is, but
//! require some compensation after the concatenation [...] For instance, a
//! count is to be compensated by a sum of the partial results." (paper §3)
//!
//! These functions are used at *two* levels, which is exactly the paper's
//! m-chunk optimization: merging per-basic-window partials into the window
//! result, and merging per-chunk partials into a basic-window partial
//! ("process the latest basic window incrementally just as we process the
//! whole window incrementally").

use crate::error::DataCellError;
use crate::rewrite::VarKind;
use datacell_kernel::algebra::{self, AggKind};
use datacell_kernel::{Bat, Value};
use datacell_plan::MalValue;

/// Merge per-part values of a frontier variable according to its kind.
/// Not applicable to cluster members — use [`merge_cluster`] for those.
pub fn merge_var(kind: VarKind, parts: &[MalValue]) -> Result<MalValue, DataCellError> {
    match kind {
        VarKind::Rows => merge_rows(parts),
        VarKind::PartialScalar(agg) => merge_scalars(agg, parts),
        VarKind::DistinctRows => {
            let rows = merge_rows(parts)?;
            let b = rows.as_bat("distinct merge").map_err(DataCellError::Plan)?;
            Ok(MalValue::Bat(algebra::distinct(b)?))
        }
        VarKind::SortedRows { desc } => {
            let rows = merge_rows(parts)?;
            let b = rows.as_bat("sort merge").map_err(DataCellError::Plan)?;
            let sorted = algebra::sort(b)?;
            Ok(MalValue::Bat(if desc { reverse(&sorted) } else { sorted }))
        }
        VarKind::GroupedPartial(_) | VarKind::GroupKeysPartial => Err(DataCellError::Unsupported(
            "cluster members must be merged via merge_cluster".into(),
        )),
        VarKind::GroupsStruct | VarKind::Plain => Err(DataCellError::Unsupported(format!(
            "variable kind {kind:?} cannot cross the merge frontier"
        ))),
    }
}

/// Simple concatenation of row-faithful partial BATs.
pub fn merge_rows(parts: &[MalValue]) -> Result<MalValue, DataCellError> {
    let bats: Vec<&Bat> = parts
        .iter()
        .map(|p| p.as_bat("rows merge").map_err(DataCellError::Plan))
        .collect::<Result<_, _>>()?;
    if bats.is_empty() {
        return Err(DataCellError::Unsupported("merge of zero parts".into()));
    }
    Ok(MalValue::Bat(algebra::concat(&bats)?))
}

/// Compensate partial scalar aggregates: apply the merge aggregate over
/// the partials (sum of sums, min of mins, sum of counts...). `Absent`
/// partials (aggregates over empty basic windows) are skipped; if all
/// partials are absent the merged value is absent.
pub fn merge_scalars(kind: AggKind, parts: &[MalValue]) -> Result<MalValue, DataCellError> {
    let comp = kind.compensation().ok_or_else(|| {
        DataCellError::Unsupported(format!(
            "{} partials have no compensation (expand first)",
            kind.sql()
        ))
    })?;
    let mut acc: Option<Value> = None;
    for p in parts {
        let v = match p {
            MalValue::Scalar(v) => v,
            MalValue::Absent => continue,
            other => {
                return Err(DataCellError::Unsupported(format!(
                    "scalar merge over non-scalar partial {other:?}"
                )))
            }
        };
        acc = Some(match acc {
            None => v.clone(),
            Some(a) => combine(comp, &a, v)?,
        });
    }
    Ok(match acc {
        Some(v) => MalValue::Scalar(v),
        // All partials absent. A count over zero parts is still 0.
        None if kind == AggKind::Count => MalValue::Scalar(Value::Int(0)),
        None => MalValue::Absent,
    })
}

/// Binary combination used by scalar compensation.
fn combine(comp: AggKind, a: &Value, b: &Value) -> Result<Value, DataCellError> {
    Ok(match comp {
        AggKind::Sum => match (a, b) {
            (Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(*y)),
            _ => {
                let (x, y) = both_f64(a, b)?;
                Value::Float(x + y)
            }
        },
        AggKind::Min => {
            if a.total_cmp(b).is_le() {
                a.clone()
            } else {
                b.clone()
            }
        }
        AggKind::Max => {
            if a.total_cmp(b).is_ge() {
                a.clone()
            } else {
                b.clone()
            }
        }
        AggKind::Count | AggKind::Avg => {
            return Err(DataCellError::Unsupported(format!(
                "{} is not a compensation aggregate",
                comp.sql()
            )))
        }
    })
}

fn both_f64(a: &Value, b: &Value) -> Result<(f64, f64), DataCellError> {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(DataCellError::Unsupported(format!("non-numeric scalar merge: {a:?}, {b:?}"))),
    }
}

/// Merge a group-by cluster (Fig. 3d): concatenate the per-part distinct
/// keys and per-group partials, re-group the concatenated keys, and apply
/// the grouped compensating aggregate per member.
///
/// `keys_parts[i]` and `agg_parts[j][i]` must be aligned (same part `i`,
/// same per-group order). Returns the merged keys and one merged column per
/// aggregate member, in member order.
pub fn merge_cluster(
    keys_parts: &[MalValue],
    agg_parts: &[(AggKind, Vec<MalValue>)],
) -> Result<(MalValue, Vec<MalValue>), DataCellError> {
    let all_keys = merge_rows(keys_parts)?;
    let keys_bat = all_keys.as_bat("cluster keys").map_err(DataCellError::Plan)?;
    let groups = algebra::group(keys_bat)?;
    let merged_keys = MalValue::Bat(Bat::transient(groups.keys(keys_bat)?));
    let mut merged_aggs = Vec::with_capacity(agg_parts.len());
    for (kind, parts) in agg_parts {
        let comp = kind.compensation().ok_or_else(|| {
            DataCellError::Unsupported(format!(
                "{} grouped partials have no compensation (expand first)",
                kind.sql()
            ))
        })?;
        let all = merge_rows(parts)?;
        let all_bat = all.as_bat("cluster partials").map_err(DataCellError::Plan)?;
        if all_bat.len() != keys_bat.len() {
            return Err(DataCellError::Unsupported(format!(
                "cluster misaligned: {} keys vs {} partials",
                keys_bat.len(),
                all_bat.len()
            )));
        }
        let col = match comp {
            AggKind::Sum => algebra::sum_grouped(all_bat, &groups)?,
            AggKind::Min => algebra::min_grouped(all_bat, &groups)?,
            AggKind::Max => algebra::max_grouped(all_bat, &groups)?,
            AggKind::Count | AggKind::Avg => unreachable!("not a compensation"),
        };
        merged_aggs.push(MalValue::Bat(Bat::transient(col)));
    }
    Ok((merged_keys, merged_aggs))
}

fn reverse(b: &Bat) -> Bat {
    let n = b.len();
    let mut out = datacell_kernel::Column::with_capacity(b.data_type(), n);
    for i in (0..n).rev() {
        out.push(b.value_at(i).expect("in range")).expect("same type");
    }
    Bat::transient(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_kernel::Column;

    fn bat(vals: Vec<i64>) -> MalValue {
        MalValue::Bat(Bat::transient(Column::Int(vals)))
    }

    #[test]
    fn rows_merge_concatenates() {
        let m = merge_var(VarKind::Rows, &[bat(vec![1, 2]), bat(vec![3])]).unwrap();
        assert_eq!(m.as_bat("t").unwrap().tail, Column::Int(vec![1, 2, 3]));
    }

    #[test]
    fn rows_merge_zero_parts_rejected() {
        assert!(merge_rows(&[]).is_err());
    }

    #[test]
    fn scalar_sum_compensation() {
        let m = merge_scalars(
            AggKind::Sum,
            &[MalValue::Scalar(Value::Int(5)), MalValue::Scalar(Value::Int(7))],
        )
        .unwrap();
        assert_eq!(m, MalValue::Scalar(Value::Int(12)));
    }

    #[test]
    fn scalar_count_compensated_by_sum() {
        // "a count is to be compensated by a sum of the partial results"
        let m = merge_scalars(
            AggKind::Count,
            &[MalValue::Scalar(Value::Int(3)), MalValue::Scalar(Value::Int(4))],
        )
        .unwrap();
        assert_eq!(m, MalValue::Scalar(Value::Int(7)));
    }

    #[test]
    fn scalar_min_max_compensation() {
        let parts = [MalValue::Scalar(Value::Int(5)), MalValue::Scalar(Value::Int(2))];
        assert_eq!(merge_scalars(AggKind::Min, &parts).unwrap(), MalValue::Scalar(Value::Int(2)));
        assert_eq!(merge_scalars(AggKind::Max, &parts).unwrap(), MalValue::Scalar(Value::Int(5)));
    }

    #[test]
    fn scalar_merge_skips_absent_parts() {
        let m = merge_scalars(
            AggKind::Sum,
            &[MalValue::Absent, MalValue::Scalar(Value::Int(9)), MalValue::Absent],
        )
        .unwrap();
        assert_eq!(m, MalValue::Scalar(Value::Int(9)));
    }

    #[test]
    fn scalar_merge_all_absent() {
        assert_eq!(merge_scalars(AggKind::Sum, &[MalValue::Absent]).unwrap(), MalValue::Absent);
        assert_eq!(
            merge_scalars(AggKind::Count, &[MalValue::Absent]).unwrap(),
            MalValue::Scalar(Value::Int(0))
        );
    }

    #[test]
    fn avg_partials_rejected() {
        assert!(merge_scalars(AggKind::Avg, &[MalValue::Scalar(Value::Int(1))]).is_err());
    }

    #[test]
    fn float_sum_compensation() {
        let m = merge_scalars(
            AggKind::Sum,
            &[MalValue::Scalar(Value::Float(0.5)), MalValue::Scalar(Value::Int(2))],
        )
        .unwrap();
        assert_eq!(m, MalValue::Scalar(Value::Float(2.5)));
    }

    #[test]
    fn distinct_merge_deduplicates_across_parts() {
        let m = merge_var(VarKind::DistinctRows, &[bat(vec![1, 2]), bat(vec![2, 3])]).unwrap();
        assert_eq!(m.as_bat("t").unwrap().tail, Column::Int(vec![1, 2, 3]));
    }

    #[test]
    fn sorted_merge_resorts() {
        let m = merge_var(VarKind::SortedRows { desc: false }, &[bat(vec![1, 5]), bat(vec![2, 4])])
            .unwrap();
        assert_eq!(m.as_bat("t").unwrap().tail, Column::Int(vec![1, 2, 4, 5]));
        let m = merge_var(VarKind::SortedRows { desc: true }, &[bat(vec![1, 5]), bat(vec![2, 4])])
            .unwrap();
        assert_eq!(m.as_bat("t").unwrap().tail, Column::Int(vec![5, 4, 2, 1]));
    }

    #[test]
    fn cluster_merge_regroups() {
        // Part 1: keys [a:1, b:2] sums [10, 20]; part 2: keys [b:2, c:3] sums [5, 7].
        let keys = [bat(vec![1, 2]), bat(vec![2, 3])];
        let sums = (AggKind::Sum, vec![bat(vec![10, 20]), bat(vec![5, 7])]);
        let (k, aggs) = merge_cluster(&keys, &[sums]).unwrap();
        assert_eq!(k.as_bat("k").unwrap().tail, Column::Int(vec![1, 2, 3]));
        assert_eq!(aggs[0].as_bat("s").unwrap().tail, Column::Int(vec![10, 25, 7]));
    }

    #[test]
    fn cluster_merge_counts_compensate_by_sum() {
        let keys = [bat(vec![7]), bat(vec![7])];
        let counts = (AggKind::Count, vec![bat(vec![4]), bat(vec![6])]);
        let (_, aggs) = merge_cluster(&keys, &[counts]).unwrap();
        assert_eq!(aggs[0].as_bat("c").unwrap().tail, Column::Int(vec![10]));
    }

    #[test]
    fn cluster_merge_min_max() {
        let keys = [bat(vec![1, 2]), bat(vec![1])];
        let mins = (AggKind::Min, vec![bat(vec![5, 9]), bat(vec![3])]);
        let maxs = (AggKind::Max, vec![bat(vec![5, 9]), bat(vec![30])]);
        let (_, aggs) = merge_cluster(&keys, &[mins, maxs]).unwrap();
        assert_eq!(aggs[0].as_bat("mn").unwrap().tail, Column::Int(vec![3, 9]));
        assert_eq!(aggs[1].as_bat("mx").unwrap().tail, Column::Int(vec![30, 9]));
    }

    #[test]
    fn cluster_merge_with_empty_parts() {
        let keys = [bat(vec![]), bat(vec![1])];
        let sums = (AggKind::Sum, vec![bat(vec![]), bat(vec![42])]);
        let (k, aggs) = merge_cluster(&keys, &[sums]).unwrap();
        assert_eq!(k.as_bat("k").unwrap().tail, Column::Int(vec![1]));
        assert_eq!(aggs[0].as_bat("s").unwrap().tail, Column::Int(vec![42]));
    }

    #[test]
    fn cluster_misalignment_detected() {
        let keys = [bat(vec![1, 2])];
        let sums = (AggKind::Sum, vec![bat(vec![10])]);
        assert!(merge_cluster(&keys, &[sums]).is_err());
    }

    #[test]
    fn merge_var_rejects_cluster_kinds() {
        assert!(merge_var(VarKind::GroupedPartial(AggKind::Sum), &[bat(vec![1])]).is_err());
        assert!(merge_var(VarKind::GroupsStruct, &[bat(vec![1])]).is_err());
    }
}
