//! # datacell-core
//!
//! The DataCell engine — the primary contribution of *"Enhanced Stream
//! Processing in a DBMS Kernel"* (EDBT 2013): incremental sliding-window
//! processing obtained by **query plan rewriting** on top of an unmodified
//! column-store kernel.
//!
//! Components (paper section in parentheses):
//!
//! * [`rewrite`](mod@rewrite) — the incremental plan rewriter (§3): splits the window
//!   into basic windows, replicates plan fragments, inserts `concat` +
//!   compensating actions, classifies join flows into n×n matrices;
//! * [`merge`] — the compensation machinery shared by window merges, chunk
//!   folds and landmark folds;
//! * [`factory`] — continuous query plans as resumable state machines
//!   (§2): [`factory::incremental::IncrementalFactory`] (Algorithm 2) and
//!   [`factory::reeval::ReevalFactory`] (Algorithm 1, the DataCellR
//!   baseline);
//! * [`adaptive`] — the self-adapting m-chunk controller (§3, Fig. 8);
//! * [`scheduler`] — the Petri-net scheduler (§2): the sequential
//!   round-robin loop plus [`scheduler::parallel::ParallelScheduler`], a
//!   worker-pool executor firing independent transitions concurrently;
//! * [`engine`] — the facade tying baskets, catalog, factories, scheduler
//!   and result delivery together (Fig. 1).

pub mod adaptive;
pub mod engine;
pub mod error;
pub mod factory;
pub mod merge;
pub mod metrics;
pub mod rewrite;
pub mod scheduler;

pub use adaptive::AdaptiveChunker;
pub use engine::{Engine, ExecMode, QueryId, RegisterOptions};
pub use error::DataCellError;
pub use factory::incremental::IncrementalFactory;
pub use factory::reeval::ReevalFactory;
pub use factory::{Factory, FireOutcome, StreamInput};
pub use metrics::{summarize, MetricsSummary, SlideMetrics};
pub use rewrite::{rewrite, verify_incremental, Cluster, IncrementalPlan, Stage, VarKind};
pub use scheduler::{
    parse_workers, workers_from_env, ConsumerId, Emission, FactoryId, ParallelScheduler, Scheduler,
    WorkerStats,
};

// Re-export the window spec and result type from the plan layer so users
// (and custom-factory authors) have one import.
pub use datacell_plan::{ResultSet, WindowSpec};
