//! Per-connection state: nonblocking buffered I/O plus the role state
//! machine (handshake → ingest / subscribe / drain-and-close).

use datacell_basket::{CsvReceptor, ShardedBasket};
use datacell_core::{ConsumerId, QueryId};
use std::io::{Read, Write};
use std::net::TcpStream;

/// What a connection turned out to be, decided by its first line.
pub(crate) enum Role {
    /// First line not yet seen.
    Handshake,
    /// `INGEST <stream>`: CSV rows into one basket, batched per tick.
    Ingest {
        /// The target stream's name (for backlog accounting and logs).
        stream: String,
        /// The stream's ingest edge, shared with the engine.
        basket: ShardedBasket,
        /// Per-connection parser; `pending_rows` is the unflushed batch.
        receptor: CsvReceptor,
    },
    /// `SUBSCRIBE <label>`: result rows out of one query.
    Subscribe {
        /// The query's label (resolves the output stream).
        label: String,
        /// The query itself (kept for diagnostics; fan-out drains by label).
        #[allow(dead_code)]
        query: QueryId,
        /// GC stake on the output basket. `None` until the output stream
        /// exists (first result); registered at the basket *base* for
        /// subscribers that attached before the stream was created and at
        /// the basket *end* for late joiners.
        consumer: Option<ConsumerId>,
    },
    /// Reply queued (metrics response or `ERR`); flush and close.
    Drain,
}

/// One client connection in the poll loop.
pub(crate) struct Conn {
    pub sock: TcpStream,
    pub peer: String,
    pub role: Role,
    /// Bytes read but not yet consumed as complete lines.
    pub inbuf: Vec<u8>,
    /// Bytes queued for the socket (partial writes leave a suffix here).
    pub outbuf: Vec<u8>,
    /// Close once `outbuf` drains.
    pub close_after_flush: bool,
    /// Peer closed its write side; no more input will arrive.
    pub eof: bool,
    /// Marked for removal by the reap pass.
    pub dead: bool,
}

impl Conn {
    pub(crate) fn new(sock: TcpStream, peer: String) -> Conn {
        Conn {
            sock,
            peer,
            role: Role::Handshake,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            close_after_flush: false,
            eof: false,
            dead: false,
        }
    }

    /// Is this an ingest connection (subject to backpressure pausing)?
    pub(crate) fn is_ingest(&self) -> bool {
        matches!(self.role, Role::Ingest { .. })
    }

    /// Drain everything currently readable into `inbuf` without blocking.
    /// Returns bytes read this pass; flags `eof` / `dead` as appropriate.
    pub(crate) fn read_available(&mut self) -> usize {
        let mut total = 0;
        let mut chunk = [0u8; 8192];
        loop {
            match self.sock.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        total
    }

    /// Write as much of `outbuf` as the socket accepts without blocking.
    /// Returns bytes written; flags `dead` on hard errors or when a
    /// close-after-flush connection finishes draining.
    pub(crate) fn write_available(&mut self) -> usize {
        let mut written = 0;
        while written < self.outbuf.len() {
            match self.sock.write(&self.outbuf[written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        self.outbuf.drain(..written);
        if self.close_after_flush && self.outbuf.is_empty() {
            self.dead = true;
        }
        written
    }

    /// Queue a reply.
    pub(crate) fn push_out(&mut self, bytes: &[u8]) {
        self.outbuf.extend_from_slice(bytes);
    }

    /// Queue an `ERR` line and close once it flushes.
    pub(crate) fn fail(&mut self, msg: &str) {
        self.push_out(format!("ERR {msg}\n").as_bytes());
        self.role = Role::Drain;
        self.close_after_flush = true;
    }
}

/// Pop every complete line (`…\n`) off the front of `buf`, leaving the
/// unterminated tail in place. When `take_tail` is set (peer sent EOF) the
/// tail is returned as a final line too — a closing client's last row
/// counts even without a trailing newline. Lines are lossy-decoded; a
/// stray `\r` (telnet-style `\r\n`) is trimmed.
pub(crate) fn split_lines(buf: &mut Vec<u8>, take_tail: bool) -> Vec<String> {
    let mut lines = Vec::new();
    let mut start = 0;
    while let Some(pos) = buf[start..].iter().position(|&b| b == b'\n') {
        let line = &buf[start..start + pos];
        lines.push(decode(line));
        start += pos + 1;
    }
    buf.drain(..start);
    if take_tail && !buf.is_empty() {
        let tail = std::mem::take(buf);
        lines.push(decode(&tail));
    }
    lines
}

fn decode(raw: &[u8]) -> String {
    let s = String::from_utf8_lossy(raw);
    s.strip_suffix('\r').unwrap_or(&s).to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_lines_keeps_partial_tail() {
        let mut buf = b"a,1\nb,2\nc,".to_vec();
        let lines = split_lines(&mut buf, false);
        assert_eq!(lines, vec!["a,1".to_owned(), "b,2".to_owned()]);
        assert_eq!(buf, b"c,");
        // More bytes arrive, completing the line.
        buf.extend_from_slice(b"3\n");
        assert_eq!(split_lines(&mut buf, false), vec!["c,3".to_owned()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn split_lines_takes_tail_on_eof() {
        let mut buf = b"x,9".to_vec();
        assert_eq!(split_lines(&mut buf, false), Vec::<String>::new());
        assert_eq!(split_lines(&mut buf, true), vec!["x,9".to_owned()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn split_lines_trims_carriage_returns() {
        let mut buf = b"GET /metrics HTTP/1.1\r\nHost: x\r\n".to_vec();
        let lines = split_lines(&mut buf, false);
        assert_eq!(lines, vec!["GET /metrics HTTP/1.1".to_owned(), "Host: x".to_owned()]);
    }
}
