//! # datacell-net
//!
//! The network edge of DataCell: the receptor/emitter processes of the
//! paper's Fig. 1 made wire-facing. "It contains receptors and emitters,
//! i.e., a set of separate processes per stream and per client,
//! respectively, to listen for new data and to deliver results" (paper §2)
//! — here one nonblocking TCP event loop multiplexing many client
//! connections onto the engine's sharded ingest edge and draining query
//! results back out to subscribers.
//!
//! The crate is deliberately **std-only**: a poll loop over nonblocking
//! `std::net` sockets, no async runtime, no vendored reactor. One thread
//! owns the [`datacell_core::Engine`] outright (no mutex around the engine)
//! and interleaves socket work with scheduler work, which keeps per-query
//! result order byte-identical to an in-process run.
//!
//! ## Protocol
//!
//! Line-framed text; the first line of a connection selects its role:
//!
//! * `INGEST <stream>` — every following line is one CSV row for
//!   `<stream>`, parsed with the same [`datacell_basket::CsvReceptor`] as
//!   the in-process loading path (malformed rows are counted and skipped,
//!   never fatal). Rows are batched per connection and flushed into the
//!   stream's [`datacell_basket::ShardedBasket`] once per poll tick or
//!   every [`NetConfig::batch_rows`] rows, whichever comes first. The
//!   server accepts **silently** (an ingest connection is write-only — a
//!   reply would arm TCP's reset-on-close-with-unread-data against writers
//!   that never read) and answers only errors: `ERR unknown stream <s>`.
//! * `SUBSCRIBE <label>` — attach to the continuous query with that label
//!   (`q0`, `q1`, … — see `Engine::queries`). The server replies
//!   `OK subscribe <label>` and then streams every result row the query
//!   emits from this point on, one CSV line per row.
//! * `GET /metrics` — one-shot HTTP: the engine's full telemetry snapshot
//!   plus this server's `datacell_net_*` families in Prometheus text
//!   format, then the connection closes.
//!
//! ## Backpressure and slow consumers
//!
//! Two explicit safety valves, both observable in `/metrics`:
//!
//! * **Ingest backpressure** — when the total unconsumed backlog across all
//!   actively-ingesting streams (sealed rows retained in baskets plus rows
//!   staged in shards) exceeds [`NetConfig::staging_budget`], the loop
//!   stops *reading* ingest sockets. Kernel TCP buffers fill and the
//!   senders block: flow control reaches the producer without any
//!   unbounded queue inside the engine.
//! * **Subscriber overflow** — each subscriber has a bounded outbound
//!   byte queue ([`NetConfig::subscriber_queue`]). A subscriber that stops
//!   reading is disconnected (and logged) the moment a delivery would
//!   overflow its queue, and its GC stake on the output basket is evicted —
//!   a stalled client can never pin `min_consumed` and freeze basket
//!   expiry for everyone else.
//!
//! Results of a query with **no** live subscribers are drained and
//! discarded (and its output basket, if any, is expired in full), so an
//! unwatched server stays bounded no matter how many queries it runs.
//!
//! Output baskets are engine streams named `<label>.out`; the suffix is
//! reserved — do not create input streams ending in `.out`.

mod conn;
mod server;
mod stats;

pub use server::{out_stream_name, NetServer};
pub use stats::NetStats;

use std::time::Duration;

/// Tuning knobs for [`NetServer::spawn`]. `Default` is sized for tests and
/// small deployments; the `serve_scale` bench sweeps the interesting axes.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Flush a connection's parsed-but-unflushed CSV rows into its basket
    /// once this many are pending, even mid-tick. Batching amortizes the
    /// shard lock; every tick ends with a flush regardless, so this bounds
    /// per-connection memory, not latency.
    pub batch_rows: usize,
    /// Total unconsumed rows (basket + staged) across actively-ingesting
    /// streams above which the loop stops reading ingest sockets until the
    /// scheduler catches up.
    pub staging_budget: usize,
    /// Maximum buffered outbound bytes per subscriber. A delivery that
    /// would exceed it disconnects the subscriber instead of queueing.
    pub subscriber_queue: usize,
    /// Longest line a client may send before the connection is dropped as
    /// malformed (guards the input buffer against a client that never
    /// sends a newline).
    pub max_line: usize,
    /// Sleep between poll iterations when no socket or scheduler progress
    /// was made.
    pub tick: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            batch_rows: 256,
            staging_budget: 1 << 16,
            subscriber_queue: 1 << 20,
            max_line: 1 << 16,
            tick: Duration::from_millis(1),
        }
    }
}
