//! Server-side observability: the `datacell_net_*` metric families.
//!
//! The counters live on clonable atomic handles (not the global registry)
//! so two servers in one process never alias each other's series; the
//! server folds them into the engine snapshot when answering `/metrics`.

use datacell_telemetry::{Counter, Family, Gauge, MetricKind, Snapshot};

/// Counters and gauges for one [`crate::NetServer`]. All handles are
/// clonable atomics: the event-loop thread records, any thread may read.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Connections ever accepted.
    pub connections_total: Counter,
    /// Currently open connections.
    pub connections_open: Gauge,
    /// High-water mark of simultaneously open connections.
    pub connections_peak: Gauge,
    /// Bytes read off client sockets.
    pub rx_bytes: Counter,
    /// Bytes written to client sockets.
    pub tx_bytes: Counter,
    /// CSV rows parsed off ingest connections into pending batches.
    pub ingest_rows: Counter,
    /// Result rows delivered into subscriber queues.
    pub fanout_rows: Counter,
    /// Subscribers disconnected because a delivery would overflow their
    /// bounded queue.
    pub subscriber_overflows: Counter,
    /// Poll ticks that skipped reading ingest sockets because the staging
    /// backlog exceeded the budget.
    pub backpressure_ticks: Counter,
    /// `GET /metrics` requests served.
    pub metrics_requests: Counter,
    /// Protocol or engine errors answered with `ERR` / logged.
    pub errors: Counter,
}

impl NetStats {
    /// Fresh, all-zero stats.
    #[must_use]
    pub fn new() -> NetStats {
        NetStats::default()
    }

    /// Append the `datacell_net_*` families to a snapshot (the engine's
    /// own, when answering `/metrics`).
    pub fn extend_snapshot(&self, snap: &mut Snapshot) {
        let counters: [(&str, &str, &Counter); 8] = [
            (
                "datacell_net_connections_total",
                "Client connections accepted by the network edge.",
                &self.connections_total,
            ),
            ("datacell_net_rx_bytes_total", "Bytes read off client sockets.", &self.rx_bytes),
            ("datacell_net_tx_bytes_total", "Bytes written to client sockets.", &self.tx_bytes),
            (
                "datacell_net_ingest_rows_total",
                "CSV rows parsed off ingest connections.",
                &self.ingest_rows,
            ),
            (
                "datacell_net_fanout_rows_total",
                "Result rows delivered into subscriber queues.",
                &self.fanout_rows,
            ),
            (
                "datacell_net_subscriber_overflows_total",
                "Subscribers disconnected for overflowing their bounded queue.",
                &self.subscriber_overflows,
            ),
            (
                "datacell_net_backpressure_ticks_total",
                "Poll ticks that paused ingest reads because the staging backlog exceeded the budget.",
                &self.backpressure_ticks,
            ),
            (
                "datacell_net_errors_total",
                "Protocol and engine errors surfaced by the network edge.",
                &self.errors,
            ),
        ];
        for (name, help, c) in counters {
            let mut f = Family::new(name, help, MetricKind::Counter);
            #[allow(clippy::cast_precision_loss)] // counters stay far below 2^52
            f.push_value(&[], c.get() as f64);
            snap.push(f);
        }
        let gauges: [(&str, &str, &Gauge); 2] = [
            (
                "datacell_net_connections_open",
                "Currently open client connections.",
                &self.connections_open,
            ),
            (
                "datacell_net_connections_peak",
                "High-water mark of simultaneously open client connections.",
                &self.connections_peak,
            ),
        ];
        for (name, help, g) in gauges {
            let mut f = Family::new(name, help, MetricKind::Gauge);
            #[allow(clippy::cast_precision_loss)]
            f.push_value(&[], g.get() as f64);
            snap.push(f);
        }
    }

    /// Record an accepted connection (total, open, peak).
    pub fn connection_opened(&self) {
        self.connections_total.inc();
        self.connections_open.inc();
        self.connections_peak.set_max(self.connections_open.get());
    }

    /// Record a closed connection.
    pub fn connection_closed(&self) {
        self.connections_open.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_telemetry::{parse_text, render_text};

    #[test]
    fn families_render_and_reparse_strictly() {
        let s = NetStats::new();
        s.connection_opened();
        s.connection_opened();
        s.connection_closed();
        s.ingest_rows.add(7);
        let mut snap = Snapshot::default();
        s.extend_snapshot(&mut snap);
        let text = render_text(&snap);
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed.get("datacell_net_connections_total", &[]), Some(2.0));
        assert_eq!(parsed.get("datacell_net_connections_open", &[]), Some(1.0));
        assert_eq!(parsed.get("datacell_net_connections_peak", &[]), Some(2.0));
        assert_eq!(parsed.get("datacell_net_ingest_rows_total", &[]), Some(7.0));
        assert!(parsed.families_without_help().is_empty());
    }
}
