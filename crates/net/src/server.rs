//! The poll loop: one thread, one [`Engine`], many sockets.
//!
//! The loop interleaves five passes per tick — accept, read/parse, flush
//! ingest batches, run the scheduler, fan results out — then writes
//! whatever the sockets will take without blocking. Owning the engine on
//! the loop thread (instead of sharing it behind a mutex) keeps per-query
//! result order identical to an in-process run: the scheduler only ever
//! runs between socket passes, exactly like a driver program alternating
//! `append` and `run_until_idle`.

use crate::conn::{split_lines, Conn, Role};
use crate::{NetConfig, NetStats};
use datacell_basket::{BasicWindow, CsvReceptor};
use datacell_core::Engine;
use datacell_kernel::{Column, DataType};
use datacell_telemetry::render_text;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Name of the engine stream buffering results of the query `label` for
/// network subscribers (`q0` → `q0.out`). The suffix is reserved: input
/// streams must not end in `.out`.
#[must_use]
pub fn out_stream_name(label: &str) -> String {
    format!("{label}.out")
}

/// Handle to a running network edge. Spawned with an [`Engine`] it owns
/// until [`NetServer::shutdown`] hands it back; dropping the handle stops
/// the server and discards the engine.
pub struct NetServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: NetStats,
    thread: Option<JoinHandle<Engine>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving the engine on a dedicated loop thread. Bind errors surface
    /// here, synchronously.
    pub fn spawn(engine: Engine, addr: &str, cfg: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = NetStats::new();
        let ev = EventLoop {
            engine,
            cfg,
            stats: stats.clone(),
            listener,
            stop: Arc::clone(&stop),
            conns: Vec::new(),
            outs: HashMap::new(),
        };
        let thread = thread::Builder::new().name("datacell-net".into()).spawn(move || ev.run())?;
        Ok(NetServer { local, stop, stats, thread: Some(thread) })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Live server counters (clonable atomic handles).
    #[must_use]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Stop the loop, flush what can be flushed, and hand the engine back
    /// for inspection.
    pub fn shutdown(mut self) -> Engine {
        self.stop.store(true, Ordering::Release);
        match self.thread.take() {
            Some(t) => match t.join() {
                Ok(engine) => engine,
                Err(panic) => std::panic::resume_unwind(panic),
            },
            // `thread` is only vacated by this method or by `Drop`, both of
            // which consume the handle; keep the signature total anyway.
            None => Engine::new(),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            drop(t.join());
        }
    }
}

struct EventLoop {
    engine: Engine,
    cfg: NetConfig,
    stats: NetStats,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    conns: Vec<Conn>,
    /// Output streams created so far: query label → stream name.
    outs: HashMap<String, String>,
}

impl EventLoop {
    fn run(mut self) -> Engine {
        while !self.stop.load(Ordering::Acquire) {
            let mut busy = self.accept_new();
            busy |= self.pump();
            busy |= self.flush_ingest();
            self.run_engine();
            busy |= self.fan_out();
            busy |= self.write_all();
            self.reap();
            if !busy {
                thread::sleep(self.cfg.tick);
            }
        }
        self.finish()
    }

    /// Accept every connection waiting on the listener.
    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((sock, peer)) => {
                    if sock.set_nonblocking(true).is_err() {
                        continue;
                    }
                    drop(sock.set_nodelay(true)); // best effort
                    self.conns.push(Conn::new(sock, peer.to_string()));
                    self.stats.connection_opened();
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        any
    }

    /// Unconsumed backlog across the distinct streams being ingested:
    /// sealed rows still retained in the basket plus rows staged in shards.
    fn ingest_backlog(&self) -> usize {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for conn in &self.conns {
            if conn.dead {
                continue;
            }
            if let Role::Ingest { stream, basket, .. } = &conn.role {
                seen.entry(stream.as_str()).or_insert_with(|| basket.len() + basket.staged_len());
            }
        }
        seen.values().sum()
    }

    /// Read every socket (ingest sockets only while under the staging
    /// budget) and process complete lines.
    fn pump(&mut self) -> bool {
        let paused = self.ingest_backlog() > self.cfg.staging_budget;
        if paused {
            self.stats.backpressure_ticks.inc();
        }
        let mut busy = false;
        let engine = &mut self.engine;
        let stats = &self.stats;
        let cfg = &self.cfg;
        for conn in &mut self.conns {
            if conn.dead || (paused && conn.is_ingest()) {
                continue;
            }
            let n = conn.read_available();
            if n > 0 {
                stats.rx_bytes.add(n as u64);
                busy = true;
            }
            if conn.inbuf.len() > cfg.max_line && !conn.inbuf.contains(&b'\n') {
                stats.errors.inc();
                conn.fail("line too long");
                continue;
            }
            for line in split_lines(&mut conn.inbuf, conn.eof) {
                busy = true;
                handle_line(engine, stats, cfg, conn, &line);
            }
            if conn.eof && conn.inbuf.is_empty() {
                match conn.role {
                    // Ingest connections die in `flush_ingest`, after
                    // their final batch lands.
                    Role::Ingest { .. } => {}
                    Role::Drain => {
                        if conn.outbuf.is_empty() {
                            conn.dead = true;
                        }
                    }
                    Role::Handshake | Role::Subscribe { .. } => conn.dead = true,
                }
            }
        }
        busy
    }

    /// Flush every connection's pending CSV batch into its basket; one
    /// clock tick per round that delivered rows.
    fn flush_ingest(&mut self) -> bool {
        let clock = self.engine.clock();
        let stats = &self.stats;
        let mut flushed = 0;
        for conn in &mut self.conns {
            if conn.dead {
                continue;
            }
            if let Role::Ingest { stream, basket, receptor } = &mut conn.role {
                let pending = receptor.pending_rows();
                if pending > 0 {
                    match receptor.flush_into(basket, clock) {
                        Ok(_) => flushed += pending,
                        Err(e) => {
                            stats.errors.inc();
                            eprintln!("datacell-net: flush into `{stream}` failed: {e}");
                            conn.dead = true;
                            continue;
                        }
                    }
                }
                if conn.eof && conn.inbuf.is_empty() {
                    conn.dead = true;
                }
            }
        }
        if flushed > 0 {
            self.engine.advance_clock(clock + 1);
        }
        flushed > 0
    }

    fn run_engine(&mut self) {
        if let Err(e) = self.engine.run_until_idle() {
            self.stats.errors.inc();
            eprintln!("datacell-net: scheduler error: {e}");
        }
    }

    /// Drain every query's results; buffer subscribed queries' rows in
    /// their output basket and deliver to each subscriber from its own
    /// cursor. Unwatched results are discarded and unwatched output
    /// baskets expired, so the server stays bounded without subscribers.
    fn fan_out(&mut self) -> bool {
        let mut interest: HashMap<String, usize> = HashMap::new();
        for conn in &self.conns {
            if conn.dead {
                continue;
            }
            if let Role::Subscribe { label, .. } = &conn.role {
                *interest.entry(label.clone()).or_insert(0) += 1;
            }
        }
        let mut busy = false;
        for (qid, label) in self.engine.queries() {
            let Ok(results) = self.engine.drain_results(qid) else { continue };
            if results.is_empty() {
                continue;
            }
            busy = true;
            if !interest.contains_key(&label) {
                continue; // no live subscriber: results dropped on the floor
            }
            let out = out_stream_name(&label);
            if self.engine.basket(&out).is_err() {
                let first = &results[0];
                let schema: Vec<(&str, DataType)> = first
                    .names()
                    .iter()
                    .map(String::as_str)
                    .zip(first.columns().iter().map(Column::data_type))
                    .collect();
                if let Err(e) = self.engine.create_stream(&out, &schema) {
                    self.stats.errors.inc();
                    eprintln!("datacell-net: creating output stream `{out}`: {e}");
                    continue;
                }
                self.outs.insert(label.clone(), out.clone());
            }
            for rs in &results {
                if rs.is_empty() {
                    continue;
                }
                if let Err(e) = self.engine.append(&out, rs.columns()) {
                    self.stats.errors.inc();
                    eprintln!("datacell-net: buffering results for `{label}`: {e}");
                }
            }
        }
        busy |= self.deliver();
        for (label, out) in &self.outs {
            if interest.contains_key(label) {
                continue;
            }
            if let Ok(b) = self.engine.basket(out) {
                b.with(|bk| {
                    let end = bk.end_oid();
                    bk.expire_upto(end);
                });
            }
        }
        busy
    }

    /// Move new output-basket rows into each subscriber's outbound queue,
    /// advancing its GC stake — or disconnect it when the delivery would
    /// overflow the bounded queue.
    fn deliver(&mut self) -> bool {
        let mut busy = false;
        let engine = &mut self.engine;
        let stats = &self.stats;
        let cfg = &self.cfg;
        for conn in &mut self.conns {
            if conn.dead {
                continue;
            }
            let (label, consumer) = match &conn.role {
                Role::Subscribe { label, consumer, .. } => (label.clone(), *consumer),
                _ => continue,
            };
            let out = out_stream_name(&label);
            let Ok(basket) = engine.basket(&out) else { continue }; // no results yet
            let id = match consumer {
                Some(id) => id,
                // The output stream appeared after this subscriber
                // attached: everything in it was emitted on their watch,
                // so stake from the basket base. (Late joiners staked at
                // the basket end during their handshake instead.)
                None => match engine.register_consumer(&out) {
                    Ok(id) => {
                        if let Role::Subscribe { consumer, .. } = &mut conn.role {
                            *consumer = Some(id);
                        }
                        id
                    }
                    Err(e) => {
                        stats.errors.inc();
                        eprintln!("datacell-net: staking `{out}` for {}: {e}", conn.peer);
                        conn.dead = true;
                        continue;
                    }
                },
            };
            let Some(cursor) = engine.consumer_cursor(id) else { continue };
            let end = basket.end_oid();
            if end <= cursor {
                continue;
            }
            let win = match basket.with(|b| b.read_range(cursor, (end - cursor) as usize)) {
                Ok(w) => w,
                Err(e) => {
                    stats.errors.inc();
                    eprintln!("datacell-net: reading `{out}` at {cursor}: {e}");
                    continue;
                }
            };
            let bytes = render_csv(&win);
            if conn.outbuf.len() + bytes.len() > cfg.subscriber_queue {
                stats.subscriber_overflows.inc();
                eprintln!(
                    "datacell-net: subscriber {} on `{label}` overflowed its {}-byte queue; disconnecting",
                    conn.peer, cfg.subscriber_queue
                );
                conn.dead = true; // reap evicts the consumer, freeing GC
                continue;
            }
            conn.push_out(&bytes);
            stats.fanout_rows.add(win.len() as u64);
            if let Err(e) = engine.advance_consumer(id, end) {
                stats.errors.inc();
                eprintln!("datacell-net: advancing {id}: {e}");
            }
            busy = true;
        }
        busy
    }

    /// Write whatever each socket will take without blocking.
    fn write_all(&mut self) -> bool {
        let stats = &self.stats;
        let mut busy = false;
        for conn in &mut self.conns {
            if conn.dead || conn.outbuf.is_empty() {
                continue;
            }
            let n = conn.write_available();
            if n > 0 {
                stats.tx_bytes.add(n as u64);
                busy = true;
            }
        }
        busy
    }

    /// Remove dead connections, releasing any GC stake they held.
    fn reap(&mut self) {
        let engine = &mut self.engine;
        let stats = &self.stats;
        self.conns.retain_mut(|conn| {
            if !conn.dead {
                return true;
            }
            if let Role::Subscribe { consumer: Some(id), label, .. } = &conn.role {
                if let Err(e) = engine.evict_consumer(*id) {
                    eprintln!("datacell-net: evicting {id} from `{label}`: {e}");
                }
            }
            stats.connection_closed();
            false
        });
    }

    /// Shutdown path: land pending batches, run the scheduler once more,
    /// fan out, and give sockets a short grace period to drain.
    fn finish(mut self) -> Engine {
        self.flush_ingest();
        self.run_engine();
        self.fan_out();
        for _ in 0..64 {
            self.write_all();
            if self.conns.iter().all(|c| c.dead || c.outbuf.is_empty()) {
                break;
            }
            thread::sleep(self.cfg.tick);
        }
        self.engine
    }
}

/// Dispatch one complete line according to the connection's role.
fn handle_line(
    engine: &mut Engine,
    stats: &NetStats,
    cfg: &NetConfig,
    conn: &mut Conn,
    line: &str,
) {
    match conn.role {
        Role::Handshake => handshake(engine, stats, conn, line),
        Role::Ingest { .. } => ingest_line(engine, stats, cfg, conn, line),
        Role::Subscribe { .. } => {
            stats.errors.inc();
            conn.fail("unexpected input on a subscriber connection");
        }
        // Trailing HTTP headers and the like: ignored.
        Role::Drain => {}
    }
}

/// First line of a connection: `INGEST` / `SUBSCRIBE` / `GET /metrics`.
fn handshake(engine: &mut Engine, stats: &NetStats, conn: &mut Conn, line: &str) {
    let mut it = line.split_whitespace();
    match it.next().unwrap_or("") {
        "INGEST" => {
            let Some(stream) = it.next() else {
                stats.errors.inc();
                conn.fail("usage: INGEST <stream>");
                return;
            };
            match engine.basket(stream) {
                // Accepted silently: an ingest connection is write-only, so
                // a writer may close without ever reading. Replying here
                // would arm TCP's reset-on-close-with-unread-data and
                // discard the writer's final rows in flight.
                Ok(basket) => {
                    let types: Vec<DataType> =
                        basket.with(|b| b.schema().iter().map(|&(_, t)| t).collect());
                    conn.role = Role::Ingest {
                        stream: stream.to_owned(),
                        basket,
                        receptor: CsvReceptor::new(&types),
                    };
                }
                Err(_) => {
                    stats.errors.inc();
                    conn.fail(&format!("unknown stream {stream}"));
                }
            }
        }
        "SUBSCRIBE" => {
            let Some(label) = it.next() else {
                stats.errors.inc();
                conn.fail("usage: SUBSCRIBE <query-label>");
                return;
            };
            match engine.queries().into_iter().find(|(_, l)| l == label) {
                Some((qid, _)) => {
                    // A late joiner (the output stream already exists)
                    // stakes at the stream end: it sees results from now
                    // on, not history another subscriber already consumed.
                    let consumer = engine.register_consumer_at_end(&out_stream_name(label)).ok();
                    conn.push_out(format!("OK subscribe {label}\n").as_bytes());
                    conn.role = Role::Subscribe { label: label.to_owned(), query: qid, consumer };
                }
                None => {
                    stats.errors.inc();
                    conn.fail(&format!("unknown query {label}"));
                }
            }
        }
        "GET" => {
            if it.next() == Some("/metrics") {
                stats.metrics_requests.inc();
                http_response(conn, "200 OK", &metrics_body(engine, stats));
            } else {
                stats.errors.inc();
                http_response(conn, "404 Not Found", "only /metrics is served\n");
            }
            conn.role = Role::Drain;
            conn.close_after_flush = true;
        }
        _ => {
            stats.errors.inc();
            conn.fail("unknown command (INGEST <stream> | SUBSCRIBE <label> | GET /metrics)");
        }
    }
}

/// A data line on an ingest connection: parse, and flush early if the
/// pending batch hit the configured size.
fn ingest_line(engine: &Engine, stats: &NetStats, cfg: &NetConfig, conn: &mut Conn, line: &str) {
    let outcome = match &mut conn.role {
        Role::Ingest { receptor, .. } => receptor.parse(line),
        _ => return,
    };
    match outcome {
        Ok(o) => stats.ingest_rows.add(o.rows as u64),
        // Only reachable under `MalformedPolicy::Fail`; server receptors
        // use the default skip-and-count policy, so rejects are counters,
        // not connection errors.
        Err(e) => {
            stats.errors.inc();
            conn.fail(&format!("csv: {e}"));
            return;
        }
    }
    let clock = engine.clock();
    if let Role::Ingest { stream, basket, receptor } = &mut conn.role {
        if receptor.pending_rows() >= cfg.batch_rows {
            if let Err(e) = receptor.flush_into(basket, clock) {
                stats.errors.inc();
                eprintln!("datacell-net: flush into `{stream}` failed: {e}");
                conn.dead = true;
            }
        }
    }
}

/// Engine snapshot plus this server's families, in Prometheus text format.
fn metrics_body(engine: &Engine, stats: &NetStats) -> String {
    let mut snap = engine.telemetry_snapshot();
    stats.extend_snapshot(&mut snap);
    render_text(&snap)
}

/// Minimal one-shot HTTP response (the connection closes after flushing).
fn http_response(conn: &mut Conn, status: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.push_out(head.as_bytes());
    conn.push_out(body.as_bytes());
}

/// Render a window of output-basket rows as CSV lines, one row per line,
/// values in [`datacell_kernel::Value`] display form.
fn render_csv(win: &BasicWindow) -> Vec<u8> {
    let mut s = String::new();
    let ncols = win.names().len();
    for i in 0..win.len() {
        for j in 0..ncols {
            if j > 0 {
                s.push(',');
            }
            if let Ok(col) = win.col(j) {
                if let Some(v) = col.get(i) {
                    let _ = write!(s, "{v}");
                }
            }
        }
        s.push('\n');
    }
    s.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_telemetry::parse_text;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    fn engine_with_stream() -> Engine {
        let mut e = Engine::new();
        e.create_stream("s", &[("x", DataType::Int), ("y", DataType::Float)]).unwrap();
        e
    }

    fn connect(server: &NetServer) -> TcpStream {
        let sock = TcpStream::connect(server.local_addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sock
    }

    #[test]
    fn ingest_lands_rows_in_the_basket() {
        let server =
            NetServer::spawn(engine_with_stream(), "127.0.0.1:0", NetConfig::default()).unwrap();
        let mut sock = connect(&server);
        // No ack on success: a writer may fire-and-forget and close.
        sock.write_all(b"INGEST s\n1,0.5\n2,1.5\n3,2.5\n").unwrap();
        drop(sock); // EOF: the server flushes the final batch
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.stats().ingest_rows.get() < 3 {
            assert!(std::time::Instant::now() < deadline, "rows never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        let engine = server.shutdown();
        assert_eq!(engine.basket_len("s").unwrap(), 3);
    }

    #[test]
    fn unknown_stream_and_command_get_err_lines() {
        let server =
            NetServer::spawn(engine_with_stream(), "127.0.0.1:0", NetConfig::default()).unwrap();
        for (req, want) in
            [("INGEST nope\n", "ERR unknown stream nope\n"), ("FROB x\n", "ERR unknown command")]
        {
            let mut sock = connect(&server);
            sock.write_all(req.as_bytes()).unwrap();
            let mut line = String::new();
            BufReader::new(&sock).read_line(&mut line).unwrap();
            assert!(line.starts_with(want.trim_end_matches('\n')), "got {line:?} for {req:?}");
        }
        assert!(server.stats().errors.get() >= 2);
        drop(server);
    }

    #[test]
    fn metrics_endpoint_serves_strictly_parseable_text() {
        let server =
            NetServer::spawn(engine_with_stream(), "127.0.0.1:0", NetConfig::default()).unwrap();
        let mut sock = connect(&server);
        sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read;
        sock.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "bad status: {response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        let parsed = parse_text(body).unwrap();
        assert!(parsed.get("datacell_net_connections_total", &[]).unwrap() >= 1.0);
        assert!(parsed.families_without_help().is_empty());
        drop(server);
    }

    #[test]
    fn unwatched_queries_do_not_accumulate_results() {
        // No subscriber: the server drains every query each tick and
        // discards the results, so outputs stay bounded.
        let mut engine = engine_with_stream();
        let q = engine
            .register_sql("SELECT count(x) FROM s WINDOW SIZE 2 SLIDE 2")
            .expect("count query");
        let server = NetServer::spawn(engine, "127.0.0.1:0", NetConfig::default()).unwrap();
        let mut sock = connect(&server);
        sock.write_all(b"INGEST s\n1,0.5\n2,1.5\n3,2.5\n4,3.5\n").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.stats().ingest_rows.get() < 4 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20)); // a few ticks to drain
        let mut engine = server.shutdown();
        // The two emitted windows were discarded, not queued.
        assert_eq!(engine.drain_results(q).unwrap().len(), 0);
    }
}
