//! Golden result sets for the window shapes the ROADMAP flags as barely
//! exercised: time-based sliding (`WINDOW RANGE … SLIDE …`) and landmark
//! (`WINDOW LANDMARK SLIDE …`) queries. Each test feeds a fixed trace and
//! pins the *exact* per-window rows, so any drift in window-boundary
//! arithmetic, empty-window handling or landmark accumulation fails loudly.

use datacell::core::RegisterOptions;
use datacell::prelude::*;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    e
}

fn rows(out: &[datacell::plan::ResultSet]) -> Vec<Vec<Vec<Value>>> {
    out.iter().map(datacell::plan::ResultSet::rows).collect()
}

/// The fixed arrival trace shared by the time-sliding goldens:
/// (ts, x1, x2) — deliberately irregular, with a silent stretch.
const TRACE: &[(u64, i64, i64)] =
    &[(0, 1, 10), (5, 2, 20), (12, 3, 30), (19, 4, 40), (25, 5, 50), (34, 6, 60)];

fn feed_trace(e: &mut Engine) {
    for &(ts, x1, x2) in TRACE {
        e.append_at("s", &[Column::Int(vec![x1]), Column::Int(vec![x2])], ts).unwrap();
    }
}

#[test]
fn golden_time_sliding_range_query() {
    // WINDOW RANGE 20 MS SLIDE 10 MS over the trace, clock driven to 60:
    //   [ 0,20): ts {0,5,12,19}  -> count 4, sum 100
    //   [10,30): ts {12,19,25}   -> count 3, sum 120
    //   [20,40): ts {25,34}      -> count 2, sum 110
    //   [30,50): ts {34}         -> count 1, sum  60
    //   [40,60): silent stretch  -> *empty result set* (the paper's
    //            "empty basic windows are recognized and simply
    //            skipped": the window closes but carries no rows)
    let mut e = engine();
    let q =
        e.register_sql("SELECT count(x1), sum(x2) FROM s WINDOW RANGE 20 MS SLIDE 10 MS").unwrap();
    feed_trace(&mut e);
    e.advance_clock(60);
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    let got = rows(&out);
    insta_eq(
        &got,
        &[
            vec![vec![Value::Int(4), Value::Int(100)]],
            vec![vec![Value::Int(3), Value::Int(120)]],
            vec![vec![Value::Int(2), Value::Int(110)]],
            vec![vec![Value::Int(1), Value::Int(60)]],
            vec![],
        ],
    );
}

#[test]
fn golden_time_sliding_incremental_and_reeval_agree() {
    // The same RANGE query through both execution strategies must pin to
    // the same golden rows — the paper's core equivalence, on the
    // time-based path.
    let mut e = engine();
    let qi =
        e.register_sql("SELECT count(x1), sum(x2) FROM s WINDOW RANGE 20 MS SLIDE 10 MS").unwrap();
    let qr = e
        .register_sql_with(
            "SELECT count(x1), sum(x2) FROM s WINDOW RANGE 20 MS SLIDE 10 MS",
            RegisterOptions { mode: ExecMode::Reevaluation, chunker: None },
        )
        .unwrap();
    feed_trace(&mut e);
    e.advance_clock(60);
    e.run_until_idle().unwrap();
    let gi = rows(&e.drain_results(qi).unwrap());
    let gr = rows(&e.drain_results(qr).unwrap());
    assert_eq!(gi, gr, "incremental and re-evaluation diverged on RANGE windows");
    assert_eq!(gi.len(), 5);
}

#[test]
fn golden_time_sliding_windows_emit_only_when_clock_passes() {
    // Clock gating: windows are emitted exactly when the clock crosses
    // their end — not earlier (data alone is not enough), not doubled on
    // a later drain.
    let mut e = engine();
    let q = e.register_sql("SELECT count(x1) FROM s WINDOW RANGE 20 MS SLIDE 10 MS").unwrap();
    feed_trace(&mut e); // clock now 34 (last stamp)
    e.run_until_idle().unwrap();
    let first = rows(&e.drain_results(q).unwrap());
    // Clock 34: windows ending at 20 and 30 are closed; 40 is not.
    insta_eq(&first, &[vec![vec![Value::Int(4)]], vec![vec![Value::Int(3)]]]);
    e.advance_clock(40);
    e.run_until_idle().unwrap();
    insta_eq(&rows(&e.drain_results(q).unwrap()), &[vec![vec![Value::Int(2)]]]);
    // No clock movement -> no new windows, no re-emission.
    e.run_until_idle().unwrap();
    assert!(e.drain_results(q).unwrap().is_empty());
}

#[test]
fn golden_count_landmark_query() {
    // WINDOW LANDMARK SLIDE 3 (count cadence): results are cumulative
    // from the landmark, emitted every 3 tuples.
    //   after 3: x1 {1,2,3}           -> max 3, sum 10+20+30       = 60
    //   after 6: + {4,5,6}            -> max 6, sum + 40+50+60     = 210
    //   after 9: + {7,8,9}            -> max 9, sum + 70+80+90     = 450
    let mut e = engine();
    let q = e.register_sql("SELECT max(x1), sum(x2) FROM s WINDOW LANDMARK SLIDE 3").unwrap();
    for i in 0..9i64 {
        e.append("s", &[Column::Int(vec![i + 1]), Column::Int(vec![(i + 1) * 10])]).unwrap();
    }
    e.run_until_idle().unwrap();
    let got = rows(&e.drain_results(q).unwrap());
    insta_eq(
        &got,
        &[
            vec![vec![Value::Int(3), Value::Int(60)]],
            vec![vec![Value::Int(6), Value::Int(210)]],
            vec![vec![Value::Int(9), Value::Int(450)]],
        ],
    );
}

#[test]
fn golden_time_landmark_query() {
    // WINDOW LANDMARK SLIDE 10 MS: cumulative from stream start, one
    // result per 10 ms tick of the clock.
    //   tick 10: ts {2,8}       -> count 2, sum  30
    //   tick 20: + ts {15}      -> count 3, sum  60
    //   tick 30: + ts {25}      -> count 4, sum 100
    let mut e = engine();
    let q = e.register_sql("SELECT count(x1), sum(x2) FROM s WINDOW LANDMARK SLIDE 10 MS").unwrap();
    for &(ts, x2) in &[(2u64, 10i64), (8, 20), (15, 30), (25, 40)] {
        e.append_at("s", &[Column::Int(vec![1]), Column::Int(vec![x2])], ts).unwrap();
    }
    e.advance_clock(30);
    e.run_until_idle().unwrap();
    let got = rows(&e.drain_results(q).unwrap());
    insta_eq(
        &got,
        &[
            vec![vec![Value::Int(2), Value::Int(30)]],
            vec![vec![Value::Int(3), Value::Int(60)]],
            vec![vec![Value::Int(4), Value::Int(100)]],
        ],
    );
}

#[test]
fn golden_time_windows_survive_sharded_ingestion() {
    // The RANGE golden, fed through the sharded path (ordered appends,
    // shards = 4): byte-identical to the single-mutex run above — the
    // allocator's clock handling must not disturb time-window slicing.
    let mut e = engine();
    e.set_basket_shards(4);
    let q =
        e.register_sql("SELECT count(x1), sum(x2) FROM s WINDOW RANGE 20 MS SLIDE 10 MS").unwrap();
    feed_trace(&mut e);
    e.advance_clock(60);
    e.run_until_idle().unwrap();
    let got = rows(&e.drain_results(q).unwrap());
    insta_eq(
        &got,
        &[
            vec![vec![Value::Int(4), Value::Int(100)]],
            vec![vec![Value::Int(3), Value::Int(120)]],
            vec![vec![Value::Int(2), Value::Int(110)]],
            vec![vec![Value::Int(1), Value::Int(60)]],
            vec![],
        ],
    );
}

/// Pinned-comparison helper with a readable diff on mismatch.
#[track_caller]
fn insta_eq(got: &[Vec<Vec<Value>>], want: &[Vec<Vec<Value>>]) {
    assert_eq!(got, want, "\ngolden mismatch\n  got:  {got:?}\n  want: {want:?}\n");
}
