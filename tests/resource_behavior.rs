//! Resource behaviour: the paper's "Discarding Input" optimization (§3)
//! and basket garbage collection under different query mixes.

use datacell::core::{ExecMode, RegisterOptions};
use datacell::prelude::*;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    e
}

#[test]
fn incremental_discards_processed_input() {
    // "once the intermediate results of the individual basic windows are
    // created, the original input tuples are no longer required" — the
    // basket must not accumulate the window; only unprocessed tail tuples
    // may remain.
    let mut e = engine();
    let _q = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 64 SLIDE 8").unwrap();
    for _ in 0..100 {
        e.append("s", &[Column::Int(vec![1; 8]), Column::Int(vec![1; 8])]).unwrap();
        e.run_until_idle().unwrap();
        // After each fully processed batch the basket is empty: the
        // factory holds per-basic-window intermediates, not raw input.
        assert_eq!(e.basket_len("s").unwrap(), 0);
    }
}

#[test]
fn incremental_join_also_discards_input() {
    // Even the n×n join keeps *intermediates* (the per-basic-window join
    // inputs), never raw basket tuples.
    let mut e = Engine::new();
    e.create_stream("a", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    e.create_stream("b", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    let _q = e
        .register_sql("SELECT max(a.v), avg(b.v) FROM a, b WHERE a.k = b.k WINDOW SIZE 32 SLIDE 8")
        .unwrap();
    for i in 0..50i64 {
        let ks: Vec<i64> = (0..8).map(|j| (i + j) % 5).collect();
        let vs: Vec<i64> = (0..8).collect();
        e.append("a", &[Column::Int(ks.clone()), Column::Int(vs.clone())]).unwrap();
        e.append("b", &[Column::Int(ks), Column::Int(vs)]).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.basket_len("a").unwrap(), 0);
        assert_eq!(e.basket_len("b").unwrap(), 0);
    }
}

#[test]
fn partial_batches_remain_until_consumed() {
    let mut e = engine();
    let _q = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 10 SLIDE 5").unwrap();
    // 7 tuples: one basic window of 5 consumed, 2 left waiting.
    e.append("s", &[Column::Int(vec![1; 7]), Column::Int(vec![1; 7])]).unwrap();
    e.run_until_idle().unwrap();
    assert_eq!(e.basket_len("s").unwrap(), 2);
}

#[test]
fn reevaluation_buffers_internally_not_in_basket() {
    // DataCellR needs the full window but buffers it inside the factory;
    // the shared basket is still drained.
    let mut e = engine();
    let _q = e
        .register_sql_with(
            "SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 40 SLIDE 8",
            RegisterOptions { mode: ExecMode::Reevaluation, chunker: None },
        )
        .unwrap();
    for _ in 0..20 {
        e.append("s", &[Column::Int(vec![1; 8]), Column::Int(vec![1; 8])]).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.basket_len("s").unwrap(), 0);
    }
}

#[test]
fn mixed_query_speeds_bound_the_basket_by_the_slowest() {
    let mut e = engine();
    let _fast = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 4 SLIDE 2").unwrap();
    let _slow = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 4 SLIDE 4").unwrap();
    // Append 101 tuples in batches of 7 (never aligned with either step).
    for _ in 0..13 {
        e.append("s", &[Column::Int(vec![1; 7]), Column::Int(vec![1; 7])]).unwrap();
        e.run_until_idle().unwrap();
        // Neither factory can be more than one step behind the appended
        // data, so at most max(step) + batch tuples remain resident.
        assert!(e.basket_len("s").unwrap() <= 4 + 7);
    }
}

#[test]
fn landmark_incremental_state_is_constant_size() {
    // Landmark queries keep ONE cumulative intermediate per frontier var
    // (paper §3): the basket must not grow even though the logical window
    // does.
    let mut e = engine();
    let q = e
        .register_sql("SELECT max(x1), sum(x2) FROM s WHERE x1 > 0 WINDOW LANDMARK SLIDE 16")
        .unwrap();
    for i in 0..200i64 {
        let xs: Vec<i64> = (0..16).map(|j| i + j).collect();
        e.append("s", &[Column::Int(xs.clone()), Column::Int(xs)]).unwrap();
        e.run_until_idle().unwrap();
        assert_eq!(e.basket_len("s").unwrap(), 0);
    }
    let out = e.drain_results(q).unwrap();
    assert_eq!(out.len(), 200);
    // Cumulative max keeps increasing.
    let last = &out[199].rows()[0];
    assert_eq!(last[0], Value::Int(214));
}
