//! SQL-level acceptance tests: each supported clause, end to end, with
//! hand-checked expected outputs.

use datacell::prelude::*;

fn engine3() -> Engine {
    let mut e = Engine::new();
    e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int), ("w", DataType::Float)])
        .unwrap();
    e
}

fn feed(e: &mut Engine, ks: Vec<i64>, vs: Vec<i64>, ws: Vec<f64>) {
    e.append("s", &[Column::Int(ks), Column::Int(vs), Column::Float(ws)]).unwrap();
    e.run_until_idle().unwrap();
}

#[test]
fn float_columns_filter_and_aggregate() {
    let mut e = engine3();
    let q = e
        .register_sql("SELECT min(w), max(w), avg(w) FROM s WHERE w >= 0.5 WINDOW SIZE 4 SLIDE 4")
        .unwrap();
    feed(&mut e, vec![1, 2, 3, 4], vec![0; 4], vec![0.25, 0.5, 1.5, 1.0]);
    let out = e.drain_results(q).unwrap();
    assert_eq!(out[0].rows(), vec![vec![Value::Float(0.5), Value::Float(1.5), Value::Float(1.0)]]);
}

#[test]
fn between_predicate() {
    let mut e = engine3();
    let q = e
        .register_sql("SELECT count(k) FROM s WHERE k BETWEEN 2 AND 4 WINDOW SIZE 6 SLIDE 6")
        .unwrap();
    feed(&mut e, vec![1, 2, 3, 4, 5, 2], vec![0; 6], vec![0.0; 6]);
    assert_eq!(e.drain_results(q).unwrap()[0].rows(), vec![vec![Value::Int(4)]]);
}

#[test]
fn not_equal_predicate() {
    let mut e = engine3();
    let q = e.register_sql("SELECT count(k) FROM s WHERE k <> 3 WINDOW SIZE 4 SLIDE 4").unwrap();
    feed(&mut e, vec![3, 1, 3, 2], vec![0; 4], vec![0.0; 4]);
    assert_eq!(e.drain_results(q).unwrap()[0].rows(), vec![vec![Value::Int(2)]]);
}

#[test]
fn conjunction_of_predicates() {
    let mut e = engine3();
    let q = e
        .register_sql(
            "SELECT sum(v) FROM s WHERE k > 1 AND v < 50 AND w >= 0.0 WINDOW SIZE 4 SLIDE 4",
        )
        .unwrap();
    feed(&mut e, vec![1, 2, 3, 4], vec![10, 20, 99, 30], vec![0.5, 0.5, 0.5, -1.0]);
    // k>1: rows 2,3,4; v<50 drops row 3; w>=0 drops row 4 -> only row 2.
    assert_eq!(e.drain_results(q).unwrap()[0].rows(), vec![vec![Value::Int(20)]]);
}

#[test]
fn grouped_multiple_aggregates() {
    let mut e = engine3();
    let q = e
        .register_sql(
            "SELECT k, sum(v), count(v), min(v), max(v), avg(v) FROM s GROUP BY k \
             WINDOW SIZE 6 SLIDE 6",
        )
        .unwrap();
    feed(&mut e, vec![1, 1, 1, 2, 2, 2], vec![10, 20, 30, 5, 15, 25], vec![0.0; 6]);
    let out = e.drain_results(q).unwrap();
    let rows = out[0].sorted_rows();
    assert_eq!(
        rows[0],
        vec![
            Value::Int(1),
            Value::Int(60),
            Value::Int(3),
            Value::Int(10),
            Value::Int(30),
            Value::Float(20.0)
        ]
    );
    assert_eq!(
        rows[1],
        vec![
            Value::Int(2),
            Value::Int(45),
            Value::Int(3),
            Value::Int(5),
            Value::Int(25),
            Value::Float(15.0)
        ]
    );
}

#[test]
fn aliased_aggregates_name_output_columns() {
    let mut e = engine3();
    let q = e
        .register_sql("SELECT sum(v) AS total, count(v) AS n FROM s WINDOW SIZE 2 SLIDE 2")
        .unwrap();
    feed(&mut e, vec![1, 2], vec![3, 4], vec![0.0; 2]);
    let out = e.drain_results(q).unwrap();
    assert_eq!(out[0].names(), &["total".to_owned(), "n".to_owned()]);
    assert_eq!(out[0].col("total").unwrap(), &Column::Int(vec![7]));
}

#[test]
fn string_columns_project_group() {
    let mut e = Engine::new();
    e.create_stream("logs", &[("level", DataType::Str), ("code", DataType::Int)]).unwrap();
    let q = e
        .register_sql("SELECT level, count(code) FROM logs GROUP BY level WINDOW SIZE 4 SLIDE 4")
        .unwrap();
    e.append(
        "logs",
        &[
            Column::Str(vec!["err".into(), "warn".into(), "err".into(), "info".into()]),
            Column::Int(vec![1, 2, 3, 4]),
        ],
    )
    .unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    let rows = out[0].sorted_rows();
    assert_eq!(rows[0], vec![Value::from("err"), Value::Int(2)]);
    assert_eq!(rows[1], vec![Value::from("info"), Value::Int(1)]);
    assert_eq!(rows[2], vec![Value::from("warn"), Value::Int(1)]);
}

#[test]
fn string_equality_filter() {
    let mut e = Engine::new();
    e.create_stream("logs", &[("level", DataType::Str), ("code", DataType::Int)]).unwrap();
    let q =
        e.register_sql("SELECT code FROM logs WHERE level = 'err' WINDOW SIZE 3 SLIDE 3").unwrap();
    e.append(
        "logs",
        &[Column::Str(vec!["err".into(), "ok".into(), "err".into()]), Column::Int(vec![7, 8, 9])],
    )
    .unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    assert_eq!(out[0].rows(), vec![vec![Value::Int(7)], vec![Value::Int(9)]]);
}

#[test]
fn order_by_ascending_default() {
    let mut e = engine3();
    let q = e.register_sql("SELECT k FROM s ORDER BY k WINDOW SIZE 4 SLIDE 4").unwrap();
    feed(&mut e, vec![3, 1, 4, 2], vec![0; 4], vec![0.0; 4]);
    let out = e.drain_results(q).unwrap();
    assert_eq!(
        out[0].rows(),
        vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)], vec![Value::Int(4)]]
    );
}

#[test]
fn projection_of_multiple_columns_stays_row_aligned() {
    let mut e = engine3();
    let q = e.register_sql("SELECT k, v, w FROM s WHERE v > 5 WINDOW SIZE 4 SLIDE 2").unwrap();
    feed(&mut e, vec![1, 2, 3, 4], vec![10, 3, 20, 4], vec![0.1, 0.2, 0.3, 0.4]);
    let out = e.drain_results(q).unwrap();
    assert_eq!(
        out[0].rows(),
        vec![
            vec![Value::Int(1), Value::Int(10), Value::Float(0.1)],
            vec![Value::Int(3), Value::Int(20), Value::Float(0.3)],
        ]
    );
}

#[test]
fn count_star_over_filtered_stream() {
    let mut e = engine3();
    let q = e.register_sql("SELECT count(*) FROM s WHERE k > 1 WINDOW SIZE 3 SLIDE 3").unwrap();
    feed(&mut e, vec![1, 2, 3], vec![0; 3], vec![0.0; 3]);
    assert_eq!(e.drain_results(q).unwrap()[0].rows(), vec![vec![Value::Int(2)]]);
}

#[test]
fn time_landmark_query() {
    let mut e = engine3();
    let q = e.register_sql("SELECT count(k) FROM s WINDOW LANDMARK SLIDE 10 MS").unwrap();
    e.append_at(
        "s",
        &[Column::Int(vec![1, 2]), Column::Int(vec![0, 0]), Column::Float(vec![0.0, 0.0])],
        4,
    )
    .unwrap();
    e.advance_clock(10);
    e.run_until_idle().unwrap();
    e.append_at("s", &[Column::Int(vec![3]), Column::Int(vec![0]), Column::Float(vec![0.0])], 14)
        .unwrap();
    e.advance_clock(20);
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].rows(), vec![vec![Value::Int(2)]]);
    assert_eq!(out[1].rows(), vec![vec![Value::Int(3)]]); // cumulative
}
