//! The fused `GroupAgg` node, end to end: byte-identical results against
//! the unfused `Group`+`GroupKeys`+`GroupedAgg` chain at every partition
//! fan-out, a golden aggregation pin through the sharded-ingest +
//! parallel-scheduler + partitioned-kernel path (all three axes at 4),
//! proof via the kernel stats counters that SQL aggregation actually
//! reaches `kernel::par`'s parallel grouped-aggregate path at
//! partitions > 1, and the optimizer's same-column filter-conjunction
//! merge at the SQL level.

use datacell::kernel::algebra::AggKind;
use datacell::kernel::par;
use datacell::plan::exec::{execute, WindowCtx};
use datacell::plan::mal::{MalBuilder, MalOp, MalPlan};
use datacell::plan::{fuse_group_agg, optimize};
use datacell::prelude::*;

/// An unfused multi-aggregate chain over int keys:
/// `SELECT k, sum(v), count(*), min(v), avg(v) GROUP BY k`.
fn unfused_int_plan() -> MalPlan {
    let mut b = MalBuilder::new();
    let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
    let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
    let g = b.emit(MalOp::Group { keys: k });
    let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
    let s = b.emit(MalOp::GroupedAgg { kind: AggKind::Sum, vals: Some(v), groups: g });
    let n = b.emit(MalOp::GroupedAgg { kind: AggKind::Count, vals: None, groups: g });
    let mn = b.emit(MalOp::GroupedAgg { kind: AggKind::Min, vals: Some(v), groups: g });
    let a = b.emit(MalOp::GroupedAgg { kind: AggKind::Avg, vals: Some(v), groups: g });
    b.finish(
        vec!["k".into(), "sum".into(), "n".into(), "min".into(), "avg".into()],
        vec![gk, s, n, mn, a],
    )
}

fn int_window(ks: Vec<i64>, vs: Vec<i64>) -> BasicWindow {
    let n = ks.len();
    BasicWindow::new(
        0,
        vec![Column::Int(ks), Column::Int(vs)],
        vec![0; n],
        vec!["k".into(), "v".into()],
    )
}

#[test]
fn fused_matches_unfused_byte_identically_at_every_p() {
    let plan = unfused_int_plan();
    let fused = fuse_group_agg(&plan);
    assert!(fused.instrs.iter().any(|i| matches!(i.op, MalOp::GroupAgg { .. })));

    let ks: Vec<i64> = (0..97).map(|i| (i * 7) % 5).collect();
    let vs: Vec<i64> = (0..97).map(|i| i * 3 + 1).collect();
    let w = int_window(ks, vs);
    let reference = execute(&plan, &WindowCtx::new().with_stream("s", &w)).unwrap();
    for p in [1usize, 2, 8] {
        let ctx = WindowCtx::new().with_stream("s", &w).with_partitions(p);
        let got = execute(&fused, &ctx).unwrap();
        assert_eq!(got.rows(), reference.rows(), "fused vs unfused diverged at P={p}");
        // The unfused chain itself is unaffected by the partition fan-out
        // (standalone Group/GroupedAgg run the sequential kernels).
        let unfused_p = execute(&plan, &ctx).unwrap();
        assert_eq!(unfused_p.rows(), reference.rows(), "unfused drifted at P={p}");
    }
}

#[test]
fn fused_matches_unfused_on_string_keys_and_empty_input() {
    let plan = unfused_int_plan();
    let fused = fuse_group_agg(&plan);

    // String keys.
    let ks: Vec<String> = (0..60).map(|i| format!("g{}", i % 7)).collect();
    let vs: Vec<i64> = (0..60).collect();
    let w = BasicWindow::new(
        0,
        vec![Column::Str(ks), Column::Int(vs)],
        vec![0; 60],
        vec!["k".into(), "v".into()],
    );
    let reference = execute(&plan, &WindowCtx::new().with_stream("s", &w)).unwrap();
    for p in [1usize, 2, 8] {
        let ctx = WindowCtx::new().with_stream("s", &w).with_partitions(p);
        assert_eq!(execute(&fused, &ctx).unwrap().rows(), reference.rows(), "P={p}");
    }

    // Empty input: zero groups, zero rows, at every fan-out.
    let w = int_window(vec![], vec![]);
    for p in [1usize, 2, 8] {
        let ctx = WindowCtx::new().with_stream("s", &w).with_partitions(p);
        assert!(execute(&fused, &ctx).unwrap().is_empty(), "P={p}");
    }
}

/// Golden pin: a SQL aggregation query through the full three-axis
/// parallel stack — sharded ingest (4), parallel scheduler (4 workers),
/// partitioned kernel (4) — must produce exactly the rows the fully
/// sequential engine produces, in the same (first-occurrence) order.
#[test]
fn golden_fused_aggregation_through_sharded_parallel_path() {
    let run = |shards: usize, workers: usize, partitions: usize| {
        let mut e = Engine::with_workers(workers);
        e.set_basket_shards(shards);
        e.set_partitions(partitions);
        e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        let q = e
            .register_sql(
                "SELECT k, sum(v), count(v), avg(v) FROM s GROUP BY k WINDOW SIZE 6 SLIDE 3",
            )
            .unwrap();
        e.append(
            "s",
            &[
                Column::Int(vec![1, 2, 1, 2, 3, 1, 3, 2, 1]),
                Column::Int(vec![10, 20, 30, 40, 50, 60, 70, 80, 90]),
            ],
        )
        .unwrap();
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        out.iter().map(datacell::plan::ResultSet::rows).collect::<Vec<_>>()
    };

    let golden = vec![
        // Window 1 (tuples 1..6): keys in first-occurrence order 1, 2, 3.
        vec![
            vec![Value::Int(1), Value::Int(100), Value::Int(3), Value::Float(100.0 / 3.0)],
            vec![Value::Int(2), Value::Int(60), Value::Int(2), Value::Float(30.0)],
            vec![Value::Int(3), Value::Int(50), Value::Int(1), Value::Float(50.0)],
        ],
        // Window 2 (tuples 4..9): merged first-occurrence order 2, 3, 1.
        vec![
            vec![Value::Int(2), Value::Int(120), Value::Int(2), Value::Float(60.0)],
            vec![Value::Int(3), Value::Int(120), Value::Int(2), Value::Float(60.0)],
            vec![Value::Int(1), Value::Int(150), Value::Int(2), Value::Float(75.0)],
        ],
    ];
    let sequential = run(1, 1, 1);
    assert_eq!(sequential, golden, "sequential run drifted from the golden pin");
    let parallel = run(4, 4, 4);
    assert_eq!(parallel, golden, "sharded+parallel run drifted from the golden pin");
}

/// Acceptance proof: with partitions > 1, a SQL-level aggregation query
/// demonstrably executes through `kernel::par`'s *parallel* grouped
/// aggregation (not just the P=1 dispatch) — observed via the kernel
/// stats counters. Basic windows must hold at least `partitions` rows or
/// the kernel falls back to the sequential single-partial path.
#[test]
fn sql_aggregation_reaches_parallel_grouped_agg_kernel() {
    let mut e = Engine::new();
    e.set_workers(1);
    e.set_partitions(4);
    e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    let q = e
        .register_sql("SELECT k, sum(v), avg(v) FROM s GROUP BY k WINDOW SIZE 512 SLIDE 256")
        .unwrap();
    let ks: Vec<i64> = (0..512).map(|i| i % 16).collect();
    let vs: Vec<i64> = (0..512).collect();

    let before = par::stats::snapshot();
    e.append("s", &[Column::Int(ks), Column::Int(vs)]).unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].len(), 16);

    let delta = par::stats::snapshot().delta(&before);
    assert!(
        delta.grouped_agg_calls > 0,
        "aggregation query never reached the fused grouped-agg kernel"
    );
    assert!(
        delta.grouped_agg_par_calls > 0,
        "partitions=4 aggregation never fanned out over parallel morsels"
    );
}

#[test]
fn where_conjunction_on_same_column_merges_to_one_filter() {
    // The optimizer satellite: adjacent WHERE filters on the same column
    // collapse into one conjunction (here a Range the bulk loops
    // specialize on), and the query still returns the right rows.
    let q = datacell::sql::parse(
        "SELECT k, sum(v) FROM s WHERE v > 10 AND v < 50 GROUP BY k WINDOW SIZE 6 SLIDE 6",
    )
    .unwrap();
    let optimized = optimize(q.plan);
    let filters = optimized.explain().lines().filter(|l| l.contains("filter")).count();
    assert_eq!(filters, 1, "same-column filters did not merge:\n{}", optimized.explain());

    let mut e = Engine::new();
    e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    let q = e
        .register_sql(
            "SELECT k, sum(v) FROM s WHERE v > 10 AND v < 50 GROUP BY k WINDOW SIZE 6 SLIDE 6",
        )
        .unwrap();
    e.append("s", &[Column::Int(vec![1, 1, 2, 2, 1, 2]), Column::Int(vec![5, 20, 30, 50, 40, 10])])
        .unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    // Kept: (1,20), (2,30), (1,40) — 5, 50 and 10 fail the conjunction.
    assert_eq!(out.len(), 1);
    assert_eq!(
        out[0].sorted_rows(),
        vec![vec![Value::Int(1), Value::Int(60)], vec![Value::Int(2), Value::Int(30)]]
    );
}
