//! The paper's Fig. 3 — the five canonical plan transformations — each
//! executed end to end in both modes with identical results:
//!
//! (a) simple concatenation       — `select a from stream where a < v1`
//! (b) concat + compensation      — `select sum(a) ...`
//! (c) expanding replication      — `select avg(a) ...`
//! (d) synchronous replication    — `select a1, max(a2) ... group by a1`
//! (e) multi-stream join matrix   — `select max(a1) from sA, sB where ...`

use datacell::core::{ExecMode, RegisterOptions};
use datacell::prelude::*;

fn both_modes(
    streams: &[(&str, Vec<Column>)],
    schema: &[(&str, DataType)],
    sql: &str,
) -> (Vec<datacell::plan::ResultSet>, Vec<datacell::plan::ResultSet>) {
    let mut e = Engine::new();
    for (name, _) in streams {
        e.create_stream(name, schema).unwrap();
    }
    let qi = e.register_sql(sql).unwrap();
    let qr = e
        .register_sql_with(sql, RegisterOptions { mode: ExecMode::Reevaluation, chunker: None })
        .unwrap();
    for (name, cols) in streams {
        e.append(name, cols).unwrap();
    }
    e.run_until_idle().unwrap();
    (e.drain_results(qi).unwrap(), e.drain_results(qr).unwrap())
}

fn assert_same(a: &[datacell::plan::ResultSet], b: &[datacell::plan::ResultSet]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.sorted_rows(), y.sorted_rows());
    }
}

fn data(n: usize, seed: i64) -> Vec<Column> {
    let a1: Vec<i64> = (0..n as i64).map(|i| (i * 7 + seed) % 20).collect();
    let a2: Vec<i64> = (0..n as i64).map(|i| (i * 13 + seed) % 100).collect();
    vec![Column::Int(a1), Column::Int(a2)]
}

const SCHEMA: &[(&str, DataType)] = &[("a1", DataType::Int), ("a2", DataType::Int)];

#[test]
fn fig3a_selection() {
    let (i, r) = both_modes(
        &[("stream", data(60, 1))],
        SCHEMA,
        "SELECT a1 FROM stream WHERE a1 < 10 WINDOW SIZE 12 SLIDE 4",
    );
    assert_same(&i, &r);
    assert_eq!(i.len(), 13);
    assert!(i.iter().any(|w| !w.is_empty()));
}

#[test]
fn fig3b_sum_with_selection() {
    let (i, r) = both_modes(
        &[("stream", data(60, 2))],
        SCHEMA,
        "SELECT sum(a1) FROM stream WHERE a1 < 10 WINDOW SIZE 12 SLIDE 4",
    );
    assert_same(&i, &r);
}

#[test]
fn fig3c_avg_with_selection() {
    let (i, r) = both_modes(
        &[("stream", data(60, 3))],
        SCHEMA,
        "SELECT avg(a1) FROM stream WHERE a1 < 10 WINDOW SIZE 12 SLIDE 4",
    );
    assert_same(&i, &r);
}

#[test]
fn fig3d_grouped_max() {
    let (i, r) = both_modes(
        &[("stream", data(60, 4))],
        SCHEMA,
        "SELECT a1, max(a2) FROM stream WHERE a1 < 10 GROUP BY a1 WINDOW SIZE 12 SLIDE 4",
    );
    assert_same(&i, &r);
}

#[test]
fn fig3e_join_with_selections_on_both_streams() {
    let (i, r) = both_modes(
        &[("sA", data(48, 5)), ("sB", data(48, 6))],
        SCHEMA,
        "SELECT max(sA.a1) FROM sA, sB \
         WHERE sA.a1 < 15 AND sB.a1 < 12 AND sA.a1 = sB.a1 \
         WINDOW SIZE 12 SLIDE 4",
    );
    assert_same(&i, &r);
    assert!(i.iter().any(|w| !w.is_empty()));
}

#[test]
fn fig3_explains_match_expected_structure() {
    use datacell::core::rewrite::{rewrite, Stage, VarKind};
    use datacell::kernel::algebra::AggKind;
    use datacell::plan::compile;

    // (a): everything replicates; frontier is row-faithful.
    let q = datacell::sql::parse("SELECT a1 FROM s WHERE a1 < 10 WINDOW SIZE 4 SLIDE 2").unwrap();
    let inc = rewrite(&compile(&q.plan).unwrap()).unwrap();
    assert!(inc.merge_instrs.is_empty());
    assert!(inc.frontier.iter().all(|&v| inc.kinds[v] == VarKind::Rows));

    // (b): a partial sum crosses the frontier.
    let q =
        datacell::sql::parse("SELECT sum(a1) FROM s WHERE a1 < 10 WINDOW SIZE 4 SLIDE 2").unwrap();
    let inc = rewrite(&compile(&q.plan).unwrap()).unwrap();
    assert!(inc.frontier.iter().any(|&v| inc.kinds[v] == VarKind::PartialScalar(AggKind::Sum)));

    // (c): avg expanded to sum + count flows + a merge-stage division.
    let q =
        datacell::sql::parse("SELECT avg(a1) FROM s WHERE a1 < 10 WINDOW SIZE 4 SLIDE 2").unwrap();
    let inc = rewrite(&compile(&q.plan).unwrap()).unwrap();
    let kinds: Vec<VarKind> = inc.frontier.iter().map(|&v| inc.kinds[v]).collect();
    assert!(kinds.contains(&VarKind::PartialScalar(AggKind::Sum)));
    assert!(kinds.contains(&VarKind::PartialScalar(AggKind::Count)));
    assert_eq!(inc.merge_instrs.len(), 1);

    // (d): one group cluster.
    let q = datacell::sql::parse(
        "SELECT a1, max(a2) FROM s WHERE a1 < 10 GROUP BY a1 WINDOW SIZE 4 SLIDE 2",
    )
    .unwrap();
    let inc = rewrite(&compile(&q.plan).unwrap()).unwrap();
    assert_eq!(inc.clusters.len(), 1);

    // (e): the join is a matrix between streams 0 and 1.
    let q = datacell::sql::parse(
        "SELECT max(sA.a1) FROM sA, sB WHERE sA.a1 < 15 AND sB.a1 < 12 AND sA.a1 = sB.a1 \
         WINDOW SIZE 4 SLIDE 2",
    )
    .unwrap();
    let inc = rewrite(&compile(&q.plan).unwrap()).unwrap();
    assert_eq!(inc.matrix_pair, Some((0, 1)));
    assert!(inc
        .matrix_instrs
        .iter()
        .any(|&i| matches!(inc.mal.instrs[i].op, datacell::plan::MalOp::Join { .. })));
    // Join-input intermediates are kept per basic window ("we cannot
    // discard the selection results once the join has consumed them").
    assert!(!inc.ring_only.is_empty());
    assert!(inc.ring_only.iter().all(|&v| matches!(inc.stages[v], Stage::PerBw(_))));
}
