//! Failure injection and edge behaviour: malformed input, starved and
//! bursty streams, degenerate windows, misuse of the API.

use datacell::basket::{Basket, BasketError, CsvReceptor, MalformedPolicy, SharedBasket};
use datacell::core::{ExecMode, RegisterOptions};
use datacell::prelude::*;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    e
}

#[test]
fn malformed_csv_rows_are_contained() {
    let mut rx = CsvReceptor::new(&[DataType::Int, DataType::Int]);
    // Garbage of every flavour: wrong arity, wrong types, empty fields.
    rx.parse("1,2\nx,y\n3\n4,5,6\n7,\n8,9\n").unwrap();
    assert_eq!(rx.rows_ok(), 2);
    assert_eq!(rx.rows_skipped(), 4);
    // Fail policy aborts instead.
    let mut strict =
        CsvReceptor::new(&[DataType::Int, DataType::Int]).with_policy(MalformedPolicy::Fail);
    let err = strict.parse("1,2\nbad,row\n").unwrap_err();
    assert_eq!(err.line, 2);
}

#[test]
fn starved_stream_never_fires() {
    let mut e = engine();
    let q = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 100 SLIDE 50").unwrap();
    // Not enough tuples for even one basic window.
    e.append("s", &[Column::Int(vec![1; 49]), Column::Int(vec![1; 49])]).unwrap();
    e.run_until_idle().unwrap();
    assert!(e.drain_results(q).unwrap().is_empty());
    // One more tuple completes the first basic window but not the window.
    e.append("s", &[Column::Int(vec![1]), Column::Int(vec![1])]).unwrap();
    e.run_until_idle().unwrap();
    assert!(e.drain_results(q).unwrap().is_empty());
    // Filling the window produces exactly one result.
    e.append("s", &[Column::Int(vec![1; 50]), Column::Int(vec![1; 50])]).unwrap();
    e.run_until_idle().unwrap();
    assert_eq!(e.drain_results(q).unwrap().len(), 1);
}

#[test]
fn bursty_arrivals_equal_steady_arrivals() {
    let xs: Vec<i64> = (0..60).map(|i| i % 7).collect();
    let ys: Vec<i64> = (0..60).collect();
    let sql = "SELECT x1, sum(x2) FROM s WHERE x1 > 1 GROUP BY x1 WINDOW SIZE 12 SLIDE 4";

    // Steady: 4-tuple batches.
    let mut e1 = engine();
    let q1 = e1.register_sql(sql).unwrap();
    for c in xs.chunks(4).zip(ys.chunks(4)) {
        e1.append("s", &[Column::Int(c.0.to_vec()), Column::Int(c.1.to_vec())]).unwrap();
        e1.run_until_idle().unwrap();
    }
    // Bursty: one huge batch then single tuples.
    let mut e2 = engine();
    let q2 = e2.register_sql(sql).unwrap();
    e2.append("s", &[Column::Int(xs[..37].to_vec()), Column::Int(ys[..37].to_vec())]).unwrap();
    e2.run_until_idle().unwrap();
    for i in 37..60 {
        e2.append("s", &[Column::Int(vec![xs[i]]), Column::Int(vec![ys[i]])]).unwrap();
        e2.run_until_idle().unwrap();
    }

    let r1 = e1.drain_results(q1).unwrap();
    let r2 = e2.drain_results(q2).unwrap();
    assert_eq!(r1.len(), r2.len());
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }
}

#[test]
fn window_spec_validation_errors() {
    let mut e = engine();
    for bad in [
        "SELECT sum(x2) FROM s WINDOW SIZE 10 SLIDE 3", // step doesn't divide
        "SELECT sum(x2) FROM s WINDOW SIZE 5 SLIDE 10", // step > size
    ] {
        assert!(e.register_sql(bad).is_err(), "{bad} should be rejected");
    }
}

#[test]
fn basket_range_errors_are_typed() {
    let mut b = Basket::new("s", &[("x", DataType::Int)]);
    b.append(&[Column::Int(vec![1, 2, 3])], 0).unwrap();
    b.expire_upto(2);
    match b.read_range(0, 1) {
        Err(BasketError::RangeUnavailable { base, .. }) => assert_eq!(base, 2),
        other => panic!("expected RangeUnavailable, got {other:?}"),
    }
}

#[test]
fn unknown_query_operations_fail_cleanly() {
    let mut e = engine();
    let q = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 2 SLIDE 1").unwrap();
    e.deregister(q).unwrap();
    assert!(e.drain_results(q).is_err());
    assert!(e.metrics(q).is_err());
    assert!(e.deregister(q).is_err());
}

#[test]
fn empty_windows_emit_empty_results_not_errors() {
    // All tuples filtered out: grouped query emits zero rows per window.
    let mut e = engine();
    let q = e
        .register_sql("SELECT x1, sum(x2) FROM s WHERE x1 > 1000 GROUP BY x1 WINDOW SIZE 4 SLIDE 2")
        .unwrap();
    e.append("s", &[Column::Int(vec![1; 8]), Column::Int(vec![1; 8])]).unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    assert_eq!(out.len(), 3);
    assert!(out.iter().all(datacell::plan::ResultSet::is_empty));
}

#[test]
fn empty_window_scalar_aggregates_drop_the_row() {
    for mode in [ExecMode::Incremental, ExecMode::Reevaluation] {
        let mut e = engine();
        let q = e
            .register_sql_with(
                "SELECT max(x1) FROM s WHERE x1 > 1000 WINDOW SIZE 4 SLIDE 2",
                RegisterOptions { mode, chunker: None },
            )
            .unwrap();
        e.append("s", &[Column::Int(vec![1; 8]), Column::Int(vec![1; 8])]).unwrap();
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(datacell::plan::ResultSet::is_empty), "{mode:?}");
    }
}

#[test]
fn time_regression_in_appends_is_rejected() {
    let b = SharedBasket::new(Basket::new("s", &[("x", DataType::Int)]));
    b.append(&[Column::Int(vec![1])], 100).unwrap();
    let err = b.append(&[Column::Int(vec![2])], 50);
    assert!(err.is_err());
}

#[test]
fn engine_clock_is_monotonic() {
    let mut e = engine();
    e.advance_clock(100);
    e.advance_clock(50); // ignored
    assert_eq!(e.clock(), 100);
    e.append_at("s", &[Column::Int(vec![1]), Column::Int(vec![1])], 200).unwrap();
    assert_eq!(e.clock(), 200);
}

#[test]
fn zero_size_batches_are_noops() {
    let mut e = engine();
    let q = e.register_sql("SELECT count(x1) FROM s WINDOW SIZE 2 SLIDE 2").unwrap();
    e.append("s", &[Column::Int(vec![]), Column::Int(vec![])]).unwrap();
    e.run_until_idle().unwrap();
    assert!(e.drain_results(q).unwrap().is_empty());
}

#[test]
fn schema_violation_on_append() {
    let mut e = engine();
    // Wrong arity.
    assert!(e.append("s", &[Column::Int(vec![1])]).is_err());
    // Wrong type.
    assert!(e.append("s", &[Column::Float(vec![1.0]), Column::Int(vec![1])]).is_err());
    // Misaligned columns.
    assert!(e.append("s", &[Column::Int(vec![1, 2]), Column::Int(vec![1])]).is_err());
}
