//! Engine telemetry integration: quiesced-snapshot stability, counter
//! monotonicity across drains, per-query series lifecycle, and the
//! Prometheus-text exposition roundtrip.
//!
//! Stability and monotonicity assertions deliberately look only at the
//! *engine-local* families (query, scheduler and basket series): the
//! process-global registry is shared with every other test running in
//! this binary, so its kernel counters may move between two snapshots
//! through no fault of the engine under test.

use datacell::prelude::*;
use datacell::telemetry::{parse_text, render_text, Snapshot};

/// Name prefixes of families assembled from engine-owned handles (as
/// opposed to the process-global registry).
const LOCAL_PREFIXES: &[&str] = &[
    "datacell_query_",
    "datacell_scheduler_",
    "datacell_basket_staged_",
    "datacell_basket_shard_",
];

fn local_only(mut snap: Snapshot) -> Snapshot {
    snap.families.retain(|f| LOCAL_PREFIXES.iter().any(|p| f.name.starts_with(p)));
    snap
}

/// An engine with all three parallelism axes at 4 and one standing
/// grouped aggregation.
fn engine_4x4x4() -> (Engine, QueryId) {
    let mut e = Engine::with_workers(4);
    e.set_basket_shards(4);
    e.set_partitions(4);
    e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    let q = e.register_sql("SELECT k, sum(v) FROM s GROUP BY k WINDOW SIZE 64 SLIDE 32").unwrap();
    (e, q)
}

fn feed(e: &mut Engine, rows: usize) {
    let ks: Vec<i64> = (0..rows as i64).map(|i| i % 8).collect();
    let vs: Vec<i64> = (0..rows as i64).collect();
    e.append("s", &[Column::Int(ks), Column::Int(vs)]).unwrap();
    e.run_until_idle().unwrap();
}

#[test]
fn quiesced_snapshot_is_stable() {
    let (mut e, _q) = engine_4x4x4();
    feed(&mut e, 256);
    // No appends, no drains between the two reads: every engine-local
    // series — including worker busy/idle time, which is only recorded
    // when a wait actually yields a job — must render identically.
    let a = render_text(&local_only(e.telemetry_snapshot()));
    let b = render_text(&local_only(e.telemetry_snapshot()));
    assert_eq!(a, b, "two snapshots of a quiesced engine diverged");
}

#[test]
fn counters_are_monotone_across_drains() {
    let (mut e, _q) = engine_4x4x4();
    feed(&mut e, 256);
    let p1 = parse_text(&render_text(&local_only(e.telemetry_snapshot()))).unwrap();
    feed(&mut e, 256);
    let p2 = parse_text(&render_text(&local_only(e.telemetry_snapshot()))).unwrap();
    for name in [
        "datacell_query_slides_total",
        "datacell_query_rows_total",
        "datacell_query_total_seconds_total",
        "datacell_query_main_plan_seconds_total",
        "datacell_query_merge_seconds_total",
        "datacell_scheduler_worker_fires_total",
    ] {
        assert!(p2.total(name) >= p1.total(name), "{name} went backwards");
    }
    // The second feed produced more slides, and both ends are quiesced.
    assert!(p2.total("datacell_query_slides_total") > p1.total("datacell_query_slides_total"));
    assert_eq!(p1.total("datacell_scheduler_queue_depth"), 0.0);
    assert_eq!(p2.total("datacell_scheduler_queue_depth"), 0.0);
}

#[test]
fn per_query_series_follow_registration() {
    // Sequential path (1 worker): the fold-in point is shared with the
    // pooled path, so the series must fill here too.
    let mut e = Engine::new();
    e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    let q = e.register_sql("SELECT sum(v) FROM s WHERE k > 0 WINDOW SIZE 8 SLIDE 4").unwrap();
    feed(&mut e, 32);
    let lbl = [("query", "q0")];
    let p = parse_text(&render_text(&e.telemetry_snapshot())).unwrap();
    let slides = p.get("datacell_query_slides_total", &lbl).unwrap();
    assert!(slides > 0.0, "sequential engine recorded no slides");
    assert!(p.get("datacell_query_rows_total", &lbl).unwrap() > 0.0);
    // Dropping the query drops its series from subsequent snapshots.
    e.deregister(q).unwrap();
    let p = parse_text(&render_text(&e.telemetry_snapshot())).unwrap();
    assert_eq!(p.get("datacell_query_slides_total", &lbl), None);
}

#[test]
fn exposition_roundtrips_and_documents_every_family() {
    let (mut e, q) = engine_4x4x4();
    feed(&mut e, 512);
    let snap = e.telemetry_snapshot();
    let text = render_text(&snap);
    let parsed = parse_text(&text).expect("engine exposition must parse");
    assert!(
        parsed.families_without_help().is_empty(),
        "families missing help text: {:?}",
        parsed.families_without_help()
    );
    // The parsed text agrees with the structured snapshot it came from.
    let slides_struct = e.metrics(q).unwrap().len() as f64;
    let slides_parsed = parsed.get("datacell_query_slides_total", &[("query", "q0")]).unwrap();
    assert_eq!(slides_parsed, slides_struct);
    // The three-axis workload left its marks in every subsystem.
    assert!(parsed.total("datacell_scheduler_worker_fires_total") > 0.0);
    assert!(parsed.total("datacell_basket_shard_rows_total") > 0.0);
}
