//! The morsel-parallel fetch & sort paths, end to end: the SortPerm →
//! Fetch head-oid contract pinned through the partitioned executor, a
//! golden ORDER BY / top-k SQL pin through the full three-axis parallel
//! stack (all axes at 4) against the sequential engine, proof via the
//! kernel stats counters that an aligned engine actually elides the
//! aggregate re-scatter, and the new telemetry families surfacing in
//! `Engine::telemetry_snapshot()`.

use datacell::kernel::{par, PlacementMode};
use datacell::plan::exec::{execute, WindowCtx};
use datacell::plan::mal::{MalBuilder, MalOp, MalPlan};
use datacell::prelude::*;
use datacell::telemetry::{parse_text, render_text};

/// `SELECT oids, k, v ORDER BY k [DESC]` as a raw MAL chain, exposing the
/// SortPerm output itself so the head-oid contract is directly visible.
fn order_by_plan(desc: bool) -> MalPlan {
    let mut b = MalBuilder::new();
    let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
    let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
    let sp = b.emit(MalOp::SortPerm { input: k, desc });
    let fk = b.emit(MalOp::Fetch { cands: sp, values: k });
    let fv = b.emit(MalOp::Fetch { cands: sp, values: v });
    b.finish(vec!["oid".into(), "k".into(), "v".into()], vec![sp, fk, fv])
}

/// SortPerm must emit *head oids* (window base + sorted position), not
/// bare positions, at every partition fan-out — that contract is what
/// lets a downstream Fetch reconstruct payload columns unchanged. The
/// window deliberately starts at oid 100 so any base/position confusion
/// shows up immediately.
#[test]
fn sort_perm_head_oids_compose_with_fetch_at_every_p() {
    let w = BasicWindow::new(
        100,
        vec![Column::Int(vec![5, 1, 4, 1, 3]), Column::Int(vec![10, 20, 30, 40, 50])],
        vec![0; 5],
        vec!["k".into(), "v".into()],
    );
    // Stable ascending permutation of k = [5,1,4,1,3] is positions
    // [1,3,4,2,0]; descending is its reverse.
    let cases = [
        (false, vec![1u64, 3, 4, 2, 0], vec![1i64, 1, 3, 4, 5], vec![20i64, 40, 50, 30, 10]),
        (true, vec![0u64, 2, 4, 3, 1], vec![5i64, 4, 3, 1, 1], vec![10i64, 30, 50, 40, 20]),
    ];
    for (desc, perm, ks, vs) in &cases {
        let plan = order_by_plan(*desc);
        let expect: Vec<Vec<Value>> = perm
            .iter()
            .zip(ks)
            .zip(vs)
            .map(|((&p, &k), &v)| vec![Value::Oid(100 + p), Value::Int(k), Value::Int(v)])
            .collect();
        let reference = execute(&plan, &WindowCtx::new().with_stream("s", &w)).unwrap();
        assert_eq!(reference.rows(), expect, "sequential drifted, desc={desc}");
        for p in [1usize, 2, 8] {
            let ctx = WindowCtx::new().with_stream("s", &w).with_partitions(p);
            let got = execute(&plan, &ctx).unwrap();
            assert_eq!(got.rows(), expect, "P={p} desc={desc}");
        }
    }
}

/// Golden pin: a SQL ORDER BY ... DESC LIMIT query through the full
/// three-axis parallel stack — sharded ingest (4), parallel scheduler
/// (4 workers), partitioned kernel (4) — must produce exactly the rows
/// the fully sequential engine produces, in the same order.
#[test]
fn golden_order_by_top_k_through_sharded_parallel_path() {
    let run = |shards: usize, workers: usize, partitions: usize| {
        let mut e = Engine::with_workers(workers);
        e.set_basket_shards(shards);
        e.set_partitions(partitions);
        e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        let q = e
            .register_sql("SELECT k, v FROM s ORDER BY v DESC LIMIT 3 WINDOW SIZE 6 SLIDE 3")
            .unwrap();
        e.append(
            "s",
            &[
                Column::Int(vec![1, 2, 1, 2, 3, 1, 3, 2, 1]),
                Column::Int(vec![10, 20, 30, 40, 50, 60, 70, 80, 90]),
            ],
        )
        .unwrap();
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        out.iter().map(datacell::plan::ResultSet::rows).collect::<Vec<_>>()
    };

    let golden = vec![
        // Window 1 (tuples 1..6): v = 60, 50, 40 on top.
        vec![
            vec![Value::Int(1), Value::Int(60)],
            vec![Value::Int(3), Value::Int(50)],
            vec![Value::Int(2), Value::Int(40)],
        ],
        // Window 2 (tuples 4..9): v = 90, 80, 70 on top.
        vec![
            vec![Value::Int(1), Value::Int(90)],
            vec![Value::Int(2), Value::Int(80)],
            vec![Value::Int(3), Value::Int(70)],
        ],
    ];
    let sequential = run(1, 1, 1);
    assert_eq!(sequential, golden, "sequential run drifted from the golden pin");
    let parallel = run(4, 4, 4);
    assert_eq!(parallel, golden, "sharded+parallel run drifted from the golden pin");
}

/// Acceptance proof for the re-scatter elision: an aligned 4×4×4 engine
/// running a grouped aggregation demonstrably takes the elided path —
/// the rewriter marks the per-bw cluster `placement_aligned`, the
/// incremental factory vouches its input, and the kernel skips the
/// per-row scatter. Results must still match the sequential engine.
#[test]
fn aligned_engine_elides_aggregate_scatter() {
    let run = |aligned: bool| {
        let mut e = Engine::with_workers(4);
        e.set_basket_shards(4);
        e.set_partitions(4);
        if aligned {
            e.set_placement(PlacementMode::Aligned);
        }
        e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        let q = e
            .register_sql("SELECT k, sum(v), avg(v) FROM s GROUP BY k WINDOW SIZE 512 SLIDE 256")
            .unwrap();
        let ks: Vec<i64> = (0..512).map(|i| i % 16).collect();
        let vs: Vec<i64> = (0..512).collect();
        e.append("s", &[Column::Int(ks), Column::Int(vs)]).unwrap();
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        out.iter().map(datacell::plan::ResultSet::rows).collect::<Vec<_>>()
    };

    let sequential = {
        let mut e = Engine::new();
        e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        let q = e
            .register_sql("SELECT k, sum(v), avg(v) FROM s GROUP BY k WINDOW SIZE 512 SLIDE 256")
            .unwrap();
        let ks: Vec<i64> = (0..512).map(|i| i % 16).collect();
        let vs: Vec<i64> = (0..512).collect();
        e.append("s", &[Column::Int(ks), Column::Int(vs)]).unwrap();
        e.run_until_idle().unwrap();
        let out = e.drain_results(q).unwrap();
        out.iter().map(datacell::plan::ResultSet::rows).collect::<Vec<_>>()
    };

    let before = par::stats::snapshot();
    let aligned = run(true);
    let delta = par::stats::snapshot().delta(&before);
    assert_eq!(aligned, sequential, "aligned elided run diverged from sequential");
    assert!(
        delta.scatter_elided > 0,
        "aligned 4x4x4 aggregation never took the elided scatter path"
    );

    // Round-robin placement never honours the mark; results still agree.
    assert_eq!(run(false), sequential, "round-robin run diverged from sequential");
}

/// The new kernel fetch/sort telemetry families surface in the engine's
/// unified snapshot once an ORDER BY workload touches them, and the
/// rendered exposition stays parse-clean.
#[test]
fn fetch_sort_families_render_in_engine_snapshot() {
    let mut e = Engine::with_workers(2);
    e.set_basket_shards(2);
    e.set_partitions(4);
    e.create_stream("s", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    let q = e
        .register_sql("SELECT k, v FROM s ORDER BY v DESC LIMIT 5 WINDOW SIZE 256 SLIDE 128")
        .unwrap();
    let ks: Vec<i64> = (0..512).map(|i| i % 16).collect();
    let vs: Vec<i64> = (0..512).map(|i| (i * 37) % 501).collect();
    e.append("s", &[Column::Int(ks), Column::Int(vs)]).unwrap();
    e.run_until_idle().unwrap();
    assert!(!e.drain_results(q).unwrap().is_empty());

    let snap = e.telemetry_snapshot();
    let text = render_text(&snap);
    let parsed = parse_text(&text).expect("snapshot must render parse-clean");
    // Counters are process-global, so only monotone/nonzero claims are
    // safe here — but this engine definitely sorted and fetched.
    assert!(parsed.total("datacell_kernel_sort_calls_total") > 0.0, "no sort calls:\n{text}");
    assert!(parsed.total("datacell_kernel_fetch_calls_total") > 0.0, "no fetch calls:\n{text}");
    assert!(
        parsed.total("datacell_kernel_sort_par_calls_total") > 0.0,
        "partitions=4 ORDER BY never took the parallel sort path:\n{text}"
    );
    for fam in ["datacell_kernel_sort_seconds", "datacell_kernel_fetch_seconds"] {
        assert!(
            snap.family(fam).is_some(),
            "timing family {fam} missing from engine snapshot (DATACELL_TELEMETRY off?)"
        );
    }
}
