//! Workspace smoke test: the README / `src/lib.rs` quick-start scenario,
//! end-to-end through the facade crate. If this fails, the front page of
//! the project is lying.

use datacell::prelude::*;

#[test]
fn quick_start_scenario_end_to_end() {
    // An engine with one input stream carrying two int attributes.
    let mut engine = Engine::new();
    engine.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();

    // Continuous query: per sliding window of 4 tuples, step 2:
    //   SELECT sum(x2) FROM s WHERE x1 > 10
    let q =
        engine.register_sql("SELECT sum(x2) FROM s WHERE x1 > 10 WINDOW SIZE 4 SLIDE 2").unwrap();

    // Feed tuples; the scheduler fires factories as windows fill.
    engine
        .append("s", &[Column::Int(vec![5, 20, 30, 7, 40, 8]), Column::Int(vec![1, 2, 3, 4, 5, 6])])
        .unwrap();
    engine.run_until_idle().unwrap();

    // Two complete windows -> two results.
    let out = engine.drain_results(q).unwrap();
    assert_eq!(out.len(), 2, "windows [1..4] and [3..6] must both have fired");

    // Window 1 covers tuples 1..=4: x1 > 10 keeps (20,2), (30,3) -> sum 5.
    // Window 2 covers tuples 3..=6: x1 > 10 keeps (30,3), (40,5) -> sum 8.
    let sums: Vec<Value> = out
        .iter()
        .map(|rs| {
            let rows = rs.rows();
            assert_eq!(rows.len(), 1, "scalar aggregate yields one row");
            rows[0][0].clone()
        })
        .collect();
    assert_eq!(sums, vec![Value::Int(5), Value::Int(8)]);

    // Drained means drained: a second drain yields nothing.
    assert!(engine.drain_results(q).unwrap().is_empty());
}

#[test]
fn quick_start_results_survive_more_appends() {
    // Same scenario, but appending in two batches across the window
    // boundary: results must be identical to the single-append run.
    let mut engine = Engine::new();
    engine.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    let q =
        engine.register_sql("SELECT sum(x2) FROM s WHERE x1 > 10 WINDOW SIZE 4 SLIDE 2").unwrap();

    engine.append("s", &[Column::Int(vec![5, 20, 30]), Column::Int(vec![1, 2, 3])]).unwrap();
    engine.run_until_idle().unwrap();
    engine.append("s", &[Column::Int(vec![7, 40, 8]), Column::Int(vec![4, 5, 6])]).unwrap();
    engine.run_until_idle().unwrap();

    let out = engine.drain_results(q).unwrap();
    let sums: Vec<Value> = out.iter().map(|rs| rs.rows()[0][0].clone()).collect();
    assert_eq!(sums, vec![Value::Int(5), Value::Int(8)]);
}
