//! End-to-end integration: SQL text → parser → optimizer → compiler →
//! incremental rewriter → factories → scheduler → results.

use datacell::core::{ExecMode, RegisterOptions};
use datacell::prelude::*;

fn engine_q1() -> Engine {
    let mut e = Engine::new();
    e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    e
}

#[test]
fn paper_q1_shape() {
    // (Q1) SELECT x1, sum(x2) FROM stream WHERE x1 > v1 GROUP BY x1
    let mut e = engine_q1();
    let q = e
        .register_sql("SELECT x1, sum(x2) FROM s WHERE x1 > 2 GROUP BY x1 WINDOW SIZE 8 SLIDE 2")
        .unwrap();
    let x1: Vec<i64> = (0..24).map(|i| i % 6).collect();
    let x2: Vec<i64> = (0..24).map(|i| i * 10).collect();
    e.append("s", &[Column::Int(x1.clone()), Column::Int(x2.clone())]).unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    assert_eq!(out.len(), 9); // (24 - 8)/2 + 1

    // Independently recompute window 3 (tuples 6..14).
    let mut expect: std::collections::BTreeMap<i64, i64> = Default::default();
    for i in 6..14 {
        if x1[i] > 2 {
            *expect.entry(x1[i]).or_insert(0) += x2[i];
        }
    }
    let got: std::collections::BTreeMap<i64, i64> = out[3]
        .rows()
        .iter()
        .map(|r| match (&r[0], &r[1]) {
            (Value::Int(k), Value::Int(v)) => (*k, *v),
            other => panic!("unexpected row {other:?}"),
        })
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn paper_q2_shape() {
    // (Q2) SELECT max(s1.x1), avg(s2.x1) FROM stream1 s1, stream2 s2
    //      WHERE s1.x2 = s2.x2
    let mut e = Engine::new();
    e.create_stream("stream1", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    e.create_stream("stream2", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    let q = e
        .register_sql(
            "SELECT max(s1.x1), avg(s2.x1) FROM stream1 s1, stream2 s2 \
             WHERE s1.x2 = s2.x2 WINDOW SIZE 6 SLIDE 3",
        )
        .unwrap();
    let n = 18usize;
    let a_x1: Vec<i64> = (0..n as i64).map(|i| 100 + i).collect();
    let a_x2: Vec<i64> = (0..n as i64).map(|i| i % 4).collect();
    let b_x1: Vec<i64> = (0..n as i64).map(|i| 7 * i).collect();
    let b_x2: Vec<i64> = (0..n as i64).map(|i| (i + 1) % 4).collect();
    e.append("stream1", &[Column::Int(a_x1.clone()), Column::Int(a_x2.clone())]).unwrap();
    e.append("stream2", &[Column::Int(b_x1.clone()), Column::Int(b_x2.clone())]).unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    assert_eq!(out.len(), 5);

    // Recompute window 2 (tuples 6..12 on both streams) naively.
    let (lo, hi) = (6usize, 12usize);
    let mut maxv: Option<i64> = None;
    let (mut sum, mut cnt) = (0i64, 0i64);
    for i in lo..hi {
        for j in lo..hi {
            if a_x2[i] == b_x2[j] {
                maxv = Some(maxv.map_or(a_x1[i], |m| m.max(a_x1[i])));
                sum += b_x1[j];
                cnt += 1;
            }
        }
    }
    let row = &out[2].rows()[0];
    assert_eq!(row[0], Value::Int(maxv.unwrap()));
    assert_eq!(row[1], Value::Float(sum as f64 / cnt as f64));
}

#[test]
fn paper_q3_landmark_shape() {
    // (Q3) select max(x1), sum(x2) from stream where x1 > v1 — landmark.
    let mut e = engine_q1();
    let q = e
        .register_sql("SELECT max(x1), sum(x2) FROM s WHERE x1 > 0 WINDOW LANDMARK SLIDE 3")
        .unwrap();
    e.append(
        "s",
        &[
            Column::Int(vec![5, -1, 3, 8, 2, -4, 1, 9, 4]),
            Column::Int(vec![1, 2, 3, 4, 5, 6, 7, 8, 9]),
        ],
    )
    .unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    assert_eq!(out.len(), 3);
    // Landmark results are cumulative.
    assert_eq!(out[0].rows(), vec![vec![Value::Int(5), Value::Int(4)]]);
    assert_eq!(out[1].rows(), vec![vec![Value::Int(8), Value::Int(13)]]);
    assert_eq!(out[2].rows(), vec![vec![Value::Int(9), Value::Int(37)]]);
}

#[test]
fn csv_receptor_to_engine_pipeline() {
    use datacell::basket::CsvReceptor;
    let mut e = engine_q1();
    let q = e.register_sql("SELECT sum(x2) FROM s WHERE x1 > 10 WINDOW SIZE 4 SLIDE 4").unwrap();
    let mut rx = CsvReceptor::new(&[DataType::Int, DataType::Int]);
    rx.parse("20,1\n5,2\n30,3\nbroken,row\n40,4\n").unwrap();
    assert_eq!(rx.rows_skipped(), 1);
    let basket = e.basket("s").unwrap();
    rx.flush_into(&basket, 0).unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rows(), vec![vec![Value::Int(8)]]); // 1 + 3 + 4
}

#[test]
fn emitters_drain_output_baskets() {
    use datacell::basket::{Basket, CollectEmitter, Emitter, SharedBasket};
    // Emitters work over output baskets; wire one manually.
    let out = SharedBasket::new(Basket::new("out", &[("v", DataType::Int)]));
    out.append(&[Column::Int(vec![42])], 7).unwrap();
    let mut em = CollectEmitter::new();
    em.drain(&out).unwrap();
    assert_eq!(em.rows()[0].1, vec![Value::Int(42)]);
}

#[test]
fn tumbling_window_is_slide_equals_size() {
    let mut e = engine_q1();
    let q = e.register_sql("SELECT count(x1) FROM s WINDOW SIZE 3 SLIDE 3").unwrap();
    e.append("s", &[Column::Int(vec![1; 9]), Column::Int(vec![0; 9])]).unwrap();
    e.run_until_idle().unwrap();
    let out = e.drain_results(q).unwrap();
    assert_eq!(out.len(), 3);
    for w in out {
        assert_eq!(w.rows(), vec![vec![Value::Int(3)]]);
    }
}

#[test]
fn distinct_and_orderby_queries() {
    let mut e = engine_q1();
    let qd = e.register_sql("SELECT DISTINCT x1 FROM s WINDOW SIZE 4 SLIDE 2").unwrap();
    let qo =
        e.register_sql("SELECT x1 FROM s ORDER BY x1 DESC LIMIT 2 WINDOW SIZE 4 SLIDE 2").unwrap();
    e.append("s", &[Column::Int(vec![3, 1, 3, 2, 9, 9]), Column::Int(vec![0; 6])]).unwrap();
    e.run_until_idle().unwrap();
    let dout = e.drain_results(qd).unwrap();
    assert_eq!(
        dout[0].sorted_rows(),
        vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]
    );
    let oout = e.drain_results(qo).unwrap();
    assert_eq!(oout[0].rows(), vec![vec![Value::Int(3)], vec![Value::Int(3)]]);
    assert_eq!(oout[1].rows(), vec![vec![Value::Int(9)], vec![Value::Int(9)]]);
}

#[test]
fn incremental_rejects_fall_back_to_reeval() {
    // Three-stream query: the incremental rewriter rejects it, but
    // re-evaluation mode runs it.
    let mut e = Engine::new();
    for s in ["a", "b", "c"] {
        e.create_stream(s, &[("k", DataType::Int)]).unwrap();
    }
    let sql_err =
        e.register_sql("SELECT count(a.k) FROM a, b WHERE a.k = b.k WINDOW SIZE 2 SLIDE 1");
    assert!(sql_err.is_ok(), "two streams are fine incrementally");
    // The SQL layer caps at two sources, so build a three-stream plan via
    // the API to exercise the rewriter's rejection path.
    use datacell::kernel::algebra::AggKind;
    use datacell::plan::{ColumnRef, LogicalPlan};
    let plan = LogicalPlan::stream("a")
        .join(LogicalPlan::stream("b"), ColumnRef::new("a", "k"), ColumnRef::new("b", "k"))
        .join(LogicalPlan::stream("c"), ColumnRef::new("a", "k"), ColumnRef::new("c", "k"))
        .aggregate(
            None,
            vec![datacell::plan::AggExpr::new(AggKind::Count, ColumnRef::new("a", "k"), "n")],
        );
    let win = WindowSpec::CountSliding { size: 2, step: 1 };
    let inc = e.register_cq(plan.clone(), win, Default::default());
    assert!(inc.is_err(), "incremental mode must reject a second stream join");
    let reeval =
        e.register_cq(plan, win, RegisterOptions { mode: ExecMode::Reevaluation, chunker: None });
    assert!(reeval.is_ok(), "re-evaluation handles any compilable plan");
}

#[test]
fn explain_shows_fig3_structure() {
    use datacell::core::rewrite;
    use datacell::plan::compile;
    let q = datacell::sql::parse(
        "SELECT x1, max(x2) FROM s WHERE x1 < 10 GROUP BY x1 WINDOW SIZE 100 SLIDE 10",
    )
    .unwrap();
    let mal = compile(&q.plan).unwrap();
    let inc = rewrite(&mal).unwrap();
    let text = inc.explain();
    // Per-bw segment (replicated ops) and a group cluster, as in Fig 3d.
    assert!(text.contains("per-bw[0]"));
    assert!(text.contains("clusters: 1"));
}
