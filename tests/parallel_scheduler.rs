//! The parallel Petri-net scheduler, end to end: worker-pool drains must
//! be invisible in per-query results, safe for factories sharing a basket
//! at different speeds, and selectable via API and `DATACELL_WORKERS`.
//!
//! These tests run under the CI worker matrix (`DATACELL_WORKERS=1,2,4`),
//! so `Engine::new()` paths exercise whichever pool size the environment
//! selects, while the determinism checks pin their own counts explicitly.

use datacell::basket::ReceptorHandle;
use datacell::core::parse_workers;
use datacell::prelude::*;

/// Eight independent standing queries over eight streams: per-query
/// results must be identical for every worker count, and the one-worker
/// run *is* the sequential scheduler (same code path), so this pins the
/// parallel drain to sequential semantics.
#[test]
fn multi_query_results_identical_across_worker_counts() {
    let run = |workers: usize| -> Vec<Vec<Vec<Vec<Value>>>> {
        let mut engine = Engine::with_workers(workers);
        let mut queries = Vec::new();
        for i in 0..8 {
            let s = format!("s{i}");
            engine.create_stream(&s, &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
            let q = engine
                .register_sql(&format!(
                    "SELECT x1, sum(x2) FROM {s} WHERE x1 > 1 GROUP BY x1 \
                     WINDOW SIZE 32 SLIDE 8"
                ))
                .unwrap();
            queries.push((s, q));
        }
        for round in 0..10 {
            for (i, (s, _)) in queries.iter().enumerate() {
                let base = (round * 8 + i) as i64;
                let xs: Vec<i64> = (0..16).map(|j| (base + j) % 5).collect();
                let ys: Vec<i64> = (0..16).map(|j| base * 100 + j).collect();
                engine.append(s, &[Column::Int(xs), Column::Int(ys)]).unwrap();
            }
            engine.run_until_idle().unwrap();
        }
        queries
            .into_iter()
            .map(|(_, q)| {
                engine
                    .drain_results(q)
                    .unwrap()
                    .iter()
                    .map(datacell::plan::ResultSet::rows)
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    let sequential = run(1);
    assert!(sequential.iter().all(|per_q| !per_q.is_empty()));
    for workers in [2, 4, 8] {
        assert_eq!(run(workers), sequential, "workers={workers} diverged");
    }
}

/// The satellite guarantee: two factories draining one shared basket at
/// very different speeds, fired from worker threads while a receptor
/// thread keeps appending, must never observe `RangeUnavailable` for
/// unconsumed oids — expiry is bounded by the slowest cursor.
#[test]
fn shared_basket_two_speeds_concurrent_consumers_never_lose_tuples() {
    const BATCHES: u64 = 60;
    const PER_BATCH: usize = 8; // 480 tuples total

    let mut engine = Engine::with_workers(4);
    engine.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    // Fast reader: window 4 -> fires 120 times; slow reader: window 96.
    let fast =
        engine.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 4 SLIDE 4").unwrap();
    let slow =
        engine.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 96 SLIDE 96").unwrap();

    let basket = engine.basket("s").unwrap();
    let mut left = BATCHES;
    let handle = ReceptorHandle::spawn(basket, 4, move || {
        if left == 0 {
            return None;
        }
        left -= 1;
        Some((
            BATCHES - left,
            vec![Column::Int(vec![1; PER_BATCH]), Column::Int(vec![2; PER_BATCH])],
        ))
    });

    let (mut fast_out, mut slow_out) = (Vec::new(), Vec::new());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        // A RangeUnavailable on an unconsumed oid would surface here.
        engine.run_until_idle().unwrap();
        fast_out.extend(engine.drain_results(fast).unwrap());
        slow_out.extend(engine.drain_results(slow).unwrap());
        if fast_out.len() >= 120 && slow_out.len() >= 5 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stalled: fast={} slow={} windows after 60s",
            fast_out.len(),
            slow_out.len()
        );
        std::thread::yield_now();
    }
    assert_eq!(handle.join().unwrap(), 480);
    engine.run_until_idle().unwrap();
    fast_out.extend(engine.drain_results(fast).unwrap());
    slow_out.extend(engine.drain_results(slow).unwrap());

    assert_eq!(fast_out.len(), 120);
    for w in &fast_out {
        assert_eq!(w.rows(), vec![vec![Value::Int(8)]]); // 4 tuples × 2
    }
    assert_eq!(slow_out.len(), 5);
    for w in &slow_out {
        assert_eq!(w.rows(), vec![vec![Value::Int(192)]]); // 96 tuples × 2
    }
    // 480 divides evenly into 96-windows: both readers consumed it all,
    // so GC emptied the basket.
    assert_eq!(engine.basket_len("s").unwrap(), 0);
}

/// Deregistering the slow consumer mid-flight releases its expiry bound
/// without disturbing the surviving parallel consumers.
#[test]
fn deregister_under_parallel_drain_releases_gc_bound() {
    let mut engine = Engine::with_workers(4);
    engine.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    let fast =
        engine.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 2 SLIDE 2").unwrap();
    let slow = engine
        .register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 500 SLIDE 500")
        .unwrap();
    engine.append("s", &[Column::Int(vec![1; 20]), Column::Int(vec![1; 20])]).unwrap();
    engine.run_until_idle().unwrap();
    // Slow query holds every tuple resident.
    assert_eq!(engine.basket_len("s").unwrap(), 20);
    engine.deregister(slow).unwrap();
    engine.append("s", &[Column::Int(vec![1; 2]), Column::Int(vec![1; 2])]).unwrap();
    engine.run_until_idle().unwrap();
    // Only the fast query bounds expiry now; it has consumed everything.
    assert_eq!(engine.basket_len("s").unwrap(), 0);
    assert_eq!(engine.drain_results(fast).unwrap().len(), 11);
}

/// Time-based windows fire identically under the worker pool: the clock
/// is snapshotted per drain, so parallel firing cannot tear a window
/// boundary.
#[test]
fn time_windows_under_worker_pool() {
    let run = |workers: usize| {
        let mut engine = Engine::with_workers(workers);
        engine.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
        let q =
            engine.register_sql("SELECT count(x1) FROM s WINDOW RANGE 20 MS SLIDE 10 MS").unwrap();
        for t in 0..10u64 {
            engine
                .append_at("s", &[Column::Int(vec![t as i64; 3]), Column::Int(vec![1; 3])], t * 7)
                .unwrap();
            engine.run_until_idle().unwrap();
        }
        engine.advance_clock(100);
        engine.run_until_idle().unwrap();
        engine
            .drain_results(q)
            .unwrap()
            .iter()
            .map(datacell::plan::ResultSet::rows)
            .collect::<Vec<_>>()
    };
    let sequential = run(1);
    assert!(!sequential.is_empty());
    assert_eq!(run(4), sequential);
}

/// `DATACELL_WORKERS` parsing: the env override accepts positive counts
/// and falls back to sequential for anything else.
#[test]
fn workers_env_override_parsing() {
    assert_eq!(parse_workers(None), None);
    assert_eq!(parse_workers(Some("4")), Some(4));
    assert_eq!(parse_workers(Some(" 2\n")), Some(2));
    assert_eq!(parse_workers(Some("0")), None);
    assert_eq!(parse_workers(Some("-3")), None);
    assert_eq!(parse_workers(Some("many")), None);
    // Engine::new respects whatever the harness environment selects.
    let expected = parse_workers(std::env::var("DATACELL_WORKERS").ok().as_deref()).unwrap_or(1);
    assert_eq!(Engine::new().workers(), expected);
    // Explicit API beats the environment.
    assert_eq!(Engine::with_workers(3).workers(), 3);
}
