//! The verifier as an oracle: hand-built malformed plans must each produce
//! the exact pinned diagnostic (rule, instruction index, variable), the
//! full SQL corpus must verify clean end to end, and property tests check
//! that randomly generated valid plans stay verifier-clean through random
//! optimizer pass pipelines.

use datacell::kernel::algebra::{AggKind, Predicate};
use datacell::kernel::{DataType, Value};
use datacell::plan::mal::{Instr, MalBuilder, MalOp, MalPlan};
use datacell::plan::verify::{
    checked_pass, lint_incremental, verify_all, verify_structural, NoSchema, Rule, SchemaOverlay,
    VerifyError,
};
use datacell::plan::{compile, optimize};
use proptest::prelude::*;

/// Shorthand: (rule, instr, var) of one diagnostic.
fn key(e: &VerifyError) -> (Rule, Option<usize>, Option<usize>) {
    (e.rule, e.instr, e.var)
}

/// A minimal valid plan: bind k, bind v, sum(v), result the sum.
fn bind_sum() -> MalPlan {
    let mut b = MalBuilder::new();
    let _k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
    let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
    let s = b.emit(MalOp::ScalarAgg { kind: AggKind::Sum, vals: v });
    b.finish(vec!["sum".into()], vec![s])
}

// ---------------------------------------------------------------------------
// Negative plans: each pins one exact diagnostic.
// ---------------------------------------------------------------------------

#[test]
fn use_before_def_is_pinned_to_the_reader() {
    let mut plan = bind_sum();
    // Make the aggregate read a var only written later (swap instrs 1/2).
    plan.instrs.swap(1, 2);
    let errs = verify_structural(&plan);
    assert!(!errs.is_empty());
    assert_eq!(key(&errs[0]), (Rule::UseBeforeDef, Some(1), Some(1)));
    assert_eq!(errs[0].op, Some("aggr.scalar"));
    assert!(errs[0].to_string().contains("use-before-def"), "{}", errs[0]);
}

#[test]
fn double_assign_is_pinned_to_the_second_writer() {
    let mut plan = bind_sum();
    // Instr 2 re-writes var 0, which instr 0 already wrote.
    plan.instrs[2].dests = vec![0];
    plan.result_vars = vec![0];
    let errs = verify_structural(&plan);
    assert_eq!(key(&errs[0]), (Rule::DoubleAssign, Some(2), Some(0)));
}

#[test]
fn join_with_one_dest_is_a_dest_arity_error() {
    let mut plan = bind_sum();
    plan.instrs[2] = Instr { dests: vec![2], op: MalOp::Join { left: 0, right: 1 } };
    let errs = verify_structural(&plan);
    assert_eq!(errs[0].rule, Rule::DestArity);
    assert_eq!(errs[0].instr, Some(2));
    assert_eq!(errs[0].op, Some("algebra.join"));
}

#[test]
fn out_of_range_operand_is_a_var_range_error() {
    let mut plan = bind_sum();
    plan.instrs[2] = Instr { dests: vec![2], op: MalOp::ScalarAgg { kind: AggKind::Sum, vals: 9 } };
    let errs = verify_structural(&plan);
    assert_eq!(key(&errs[0]), (Rule::VarRange, Some(2), Some(9)));
}

#[test]
fn unwritten_result_var_is_reported_at_plan_level() {
    let mut plan = bind_sum();
    plan.nvars += 1;
    plan.result_vars = vec![3];
    let errs = verify_structural(&plan);
    assert_eq!(key(&errs[0]), (Rule::ResultUnwritten, None, Some(3)));
}

#[test]
fn select_over_a_candidate_list_is_an_operand_kind_error() {
    let mut b = MalBuilder::new();
    let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
    let c = b.emit(MalOp::Select { input: k, pred: Predicate::gt(Value::Int(1)) });
    let c2 = b.emit(MalOp::Select { input: c, pred: Predicate::gt(Value::Int(2)) });
    let plan = b.finish(vec!["c".into()], vec![c2]);
    let errs = verify_all(&plan, &NoSchema);
    assert_eq!(key(&errs[0]), (Rule::OperandKind, Some(2), Some(c)));
    assert_eq!(errs[0].op, Some("algebra.select"));
}

#[test]
fn fetch_through_a_value_bat_is_an_operand_kind_error() {
    let mut b = MalBuilder::new();
    let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
    let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
    // `cands` is a known-int value BAT, not an oid candidate list. (With
    // no schema the candidate type stays open and the check is skipped.)
    let f = b.emit(MalOp::Fetch { cands: k, values: v });
    let plan = b.finish(vec!["f".into()], vec![f]);
    assert!(verify_all(&plan, &NoSchema).is_empty());
    let schema =
        SchemaOverlay::new(&NoSchema).with_stream("s", vec![("k".to_owned(), DataType::Int)]);
    let errs = verify_all(&plan, &schema);
    assert_eq!(key(&errs[0]), (Rule::OperandKind, Some(2), Some(k)));
    assert_eq!(errs[0].op, Some("algebra.fetch"));
}

#[test]
fn sum_over_a_string_column_is_a_type_mismatch() {
    let mut b = MalBuilder::new();
    let lvl = b.emit(MalOp::BindStream { stream: "logs".into(), attr: "level".into() });
    let s = b.emit(MalOp::ScalarAgg { kind: AggKind::Sum, vals: lvl });
    let plan = b.finish(vec!["sum".into()], vec![s]);
    let schema = SchemaOverlay::new(&NoSchema)
        .with_stream("logs", vec![("level".to_owned(), DataType::Str)]);
    let errs = verify_all(&plan, &schema);
    assert_eq!(key(&errs[0]), (Rule::TypeMismatch, Some(1), Some(lvl)));
    assert!(errs[0].message.contains("sum over a str column"), "{}", errs[0]);
    // With no schema the input type stays open and the check is skipped.
    assert!(verify_all(&plan, &NoSchema).is_empty());
}

#[test]
fn concat_of_mismatched_column_types_is_a_type_mismatch() {
    let mut b = MalBuilder::new();
    let i = b.emit(MalOp::BindStream { stream: "s".into(), attr: "n".into() });
    let t = b.emit(MalOp::BindStream { stream: "logs".into(), attr: "level".into() });
    let c = b.emit(MalOp::Concat { parts: vec![i, t] });
    let plan = b.finish(vec!["c".into()], vec![c]);
    let schema = SchemaOverlay::new(&NoSchema)
        .with_stream("s", vec![("n".to_owned(), DataType::Int)])
        .with_stream("logs", vec![("level".to_owned(), DataType::Str)]);
    let errs = verify_all(&plan, &schema);
    assert_eq!(errs[0].rule, Rule::TypeMismatch);
    assert_eq!(errs[0].instr, Some(2));
    assert_eq!(errs[0].var, Some(t));
}

#[test]
fn div_scalar_over_bats_is_an_operand_kind_error() {
    let mut b = MalBuilder::new();
    let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
    let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
    let d = b.emit(MalOp::DivScalar { num: k, den: v });
    let plan = b.finish(vec!["d".into()], vec![d]);
    let errs = verify_all(&plan, &NoSchema);
    assert_eq!(key(&errs[0]), (Rule::OperandKind, Some(2), Some(k)));
    assert_eq!(errs[0].op, Some("calc.div"));
}

#[test]
fn grouped_sum_without_a_value_column_is_rejected() {
    let mut b = MalBuilder::new();
    let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
    let g = b.emit(MalOp::Group { keys: k });
    let a = b.emit(MalOp::GroupedAgg { kind: AggKind::Sum, vals: None, groups: g });
    let plan = b.finish(vec!["a".into()], vec![a]);
    let errs = verify_all(&plan, &NoSchema);
    assert_eq!(errs[0].rule, Rule::OperandKind);
    assert_eq!(errs[0].instr, Some(2));
}

#[test]
fn mismatched_group_keys_column_is_an_open_chain_lint() {
    let mut b = MalBuilder::new();
    let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
    let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
    let g = b.emit(MalOp::Group { keys: k });
    // The chain materializes v, but k was grouped: the chain cannot fuse.
    let gk = b.emit(MalOp::GroupKeys { groups: g, keys: v });
    let n = b.emit(MalOp::GroupedAgg { kind: AggKind::Count, vals: None, groups: g });
    let plan = b.finish(vec!["k".into(), "n".into()], vec![gk, n]);
    let lints = lint_incremental(&plan);
    assert!(!lints.is_empty());
    assert_eq!(key(&lints[0]), (Rule::OpenGroupChain, Some(3), Some(v)));
    // The structural and typed layers still consider the plan valid:
    // open chains are an incremental-safety lint, not an error.
    assert!(verify_all(&plan, &NoSchema).is_empty());
}

// ---------------------------------------------------------------------------
// The SQL corpus verifies clean through the whole pipeline.
// ---------------------------------------------------------------------------

#[test]
fn every_corpus_query_verifies_clean() {
    let streams = datacell::sql::corpus_streams();
    for (name, sql) in datacell::sql::corpus() {
        let q = datacell::sql::parse(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mal = compile(&optimize(q.plan)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut schema = SchemaOverlay::new(&NoSchema);
        for (s, cols) in &streams {
            schema = schema.with_stream(
                (*s).to_owned(),
                cols.iter().map(|&(c, t)| (c.to_owned(), t)).collect(),
            );
        }
        let errs = verify_all(&mal, &schema);
        assert!(errs.is_empty(), "{name}: {:?}\n{}", errs, mal.explain());
        // The rewriter's passes hold verifier-cleanliness on every entry.
        let fused = checked_pass("fuse_group_agg", &mal, datacell::plan::fuse_group_agg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        checked_pass("expand_avg", &fused, datacell::core::rewrite::expand_avg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let inc = datacell::core::rewrite(&mal).unwrap_or_else(|e| panic!("{name}: {e}"));
        datacell::core::verify_incremental(&inc).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

// ---------------------------------------------------------------------------
// Property tests: random valid plans stay clean through random pipelines.
// ---------------------------------------------------------------------------

/// Build a valid plan from random shape parameters, mirroring the shapes
/// the SQL compiler emits: optional filter, then either an unfused grouped
/// chain or scalar aggregates.
fn gen_plan(nattrs: usize, filter: bool, grouped: bool, aggs: &[AggKind], thr: i64) -> MalPlan {
    let mut b = MalBuilder::new();
    let binds: Vec<usize> = (0..nattrs.max(2))
        .map(|i| b.emit(MalOp::BindStream { stream: "s".into(), attr: format!("a{i}") }))
        .collect();
    let (mut k, mut v) = (binds[0], binds[1]);
    if filter {
        let c = b.emit(MalOp::Select { input: binds[0], pred: Predicate::gt(Value::Int(thr)) });
        k = b.emit(MalOp::Fetch { cands: c, values: binds[0] });
        v = b.emit(MalOp::Fetch { cands: c, values: binds[1] });
    }
    let (mut names, mut vars) = (Vec::new(), Vec::new());
    if grouped {
        let g = b.emit(MalOp::Group { keys: k });
        let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
        names.push("k".to_owned());
        vars.push(gk);
        for (i, &kind) in aggs.iter().enumerate() {
            let vals = if kind == AggKind::Count { None } else { Some(v) };
            let a = b.emit(MalOp::GroupedAgg { kind, vals, groups: g });
            names.push(format!("agg{i}"));
            vars.push(a);
        }
    } else {
        for (i, &kind) in aggs.iter().enumerate() {
            let a = b.emit(MalOp::ScalarAgg { kind, vals: v });
            names.push(format!("agg{i}"));
            vars.push(a);
        }
    }
    b.finish(names, vars)
}

const ALL_AGGS: [AggKind; 5] =
    [AggKind::Sum, AggKind::Count, AggKind::Min, AggKind::Max, AggKind::Avg];

proptest! {
    #[test]
    fn random_valid_plans_verify_clean(
        nattrs in 2usize..4,
        filter in any::<bool>(),
        grouped in any::<bool>(),
        aggmask in 1usize..32,
        thr in -100i64..100,
    ) {
        let aggs: Vec<AggKind> = ALL_AGGS
            .iter()
            .enumerate()
            .filter(|&(i, _)| aggmask & (1 << i) != 0)
            .map(|(_, &k)| k)
            .collect();
        let plan = gen_plan(nattrs, filter, grouped, &aggs, thr);
        let errs = verify_all(&plan, &NoSchema);
        prop_assert!(errs.is_empty(), "{errs:?}\n{}", plan.explain());
    }

    #[test]
    fn random_pass_pipelines_preserve_cleanliness(
        filter in any::<bool>(),
        grouped in any::<bool>(),
        aggmask in 1usize..32,
        thr in -100i64..100,
        pipeline in prop::collection::vec(0usize..2, 0..5),
    ) {
        let aggs: Vec<AggKind> = ALL_AGGS
            .iter()
            .enumerate()
            .filter(|&(i, _)| aggmask & (1 << i) != 0)
            .map(|(_, &k)| k)
            .collect();
        let mut plan = gen_plan(2, filter, grouped, &aggs, thr);
        for &which in &pipeline {
            // checked_pass verifies the plan both entering and leaving the
            // pass; any dirtiness makes it return Err.
            plan = match which {
                0 => checked_pass("fuse_group_agg", &plan, |p| {
                    datacell::plan::fuse_group_agg(p)
                }),
                _ => checked_pass("expand_avg", &plan, datacell::core::rewrite::expand_avg),
            }
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        prop_assert!(verify_all(&plan, &NoSchema).is_empty());
    }
}
