//! End-to-end exercise of the network edge: real localhost TCP sockets,
//! concurrent writers and subscribers, against `datacell_net::NetServer`.
//!
//! The headline invariant mirrors the parallelism arc: results delivered
//! over the wire are **byte-for-byte** what an in-process run of the same
//! engine configuration produces — the network edge adds transport, not
//! semantics.

use datacell::core::Engine;
use datacell::kernel::{Column, DataType};
use datacell::net::{NetConfig, NetServer};
use datacell::plan::ResultSet;
use datacell::telemetry::parse_text;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const STREAMS: usize = 3;
const ROWS_PER_STREAM: usize = 40;

/// One engine shape, used for both the in-process reference and the
/// served instance: `STREAMS` input streams, one continuous query each.
fn build_engine() -> Engine {
    let mut e = Engine::new();
    for i in 0..STREAMS {
        e.create_stream(&format!("s{i}"), &[("x", DataType::Int), ("y", DataType::Float)])
            .expect("stream");
    }
    for i in 0..STREAMS {
        let sql = if i % 2 == 0 {
            format!("SELECT sum(y) FROM s{i} WHERE x > 1 WINDOW SIZE 8 SLIDE 4")
        } else {
            format!("SELECT count(x) FROM s{i} WINDOW SIZE 8 SLIDE 4")
        };
        e.register_sql(&sql).expect("query");
    }
    e
}

/// Deterministic per-stream data; writer `i` owns stream `s{i}` outright,
/// so per-stream arrival order (hence per-query results) is independent of
/// how the OS interleaves the connections.
fn rows_for(stream: usize) -> (Vec<i64>, Vec<f64>) {
    let xs = (0..ROWS_PER_STREAM).map(|j| ((j + stream) % 7) as i64).collect();
    #[allow(clippy::cast_precision_loss)]
    let ys = (0..ROWS_PER_STREAM).map(|j| j as f64 * 0.5 + stream as f64).collect();
    (xs, ys)
}

/// Render results exactly like the server's fan-out does: one CSV line per
/// row, `Value` display form, comma-separated.
fn csv_lines(results: &[ResultSet]) -> Vec<String> {
    let mut lines = Vec::new();
    for rs in results {
        for row in rs.rows() {
            let mut s = String::new();
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            lines.push(s);
        }
    }
    lines
}

/// The in-process reference: same engine, same rows, no sockets.
fn reference_lines() -> Vec<Vec<String>> {
    let mut e = build_engine();
    for i in 0..STREAMS {
        let (xs, ys) = rows_for(i);
        e.append(&format!("s{i}"), &[Column::Int(xs), Column::Float(ys)]).expect("append");
    }
    e.run_until_idle().expect("run");
    let queries = e.queries();
    queries.iter().map(|&(q, _)| csv_lines(&e.drain_results(q).expect("drain"))).collect()
}

fn connect(server: &NetServer) -> TcpStream {
    let sock = TcpStream::connect(server.local_addr()).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    sock
}

fn read_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    line.trim_end_matches('\n').to_owned()
}

#[test]
fn socket_results_match_in_process_byte_for_byte() {
    let expected = reference_lines();
    let server = NetServer::spawn(build_engine(), "127.0.0.1:0", NetConfig::default())
        .expect("spawn server");

    // M = 2 subscribers per query, attached before any data flows so all
    // of them see every result from the first window on.
    let mut subscribers = Vec::new();
    for qi in 0..STREAMS {
        for _ in 0..2 {
            let sock = connect(&server);
            let mut reader = BufReader::new(sock);
            reader.get_mut().write_all(format!("SUBSCRIBE q{qi}\n").as_bytes()).expect("send");
            assert_eq!(read_line(&mut reader), format!("OK subscribe q{qi}"));
            subscribers.push((qi, reader));
        }
    }

    // N concurrent writers, one per stream, over their own connections.
    let writers: Vec<_> = (0..STREAMS)
        .map(|i| {
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let mut sock = TcpStream::connect(addr).expect("writer connect");
                sock.write_all(format!("INGEST s{i}\n").as_bytes()).expect("hello");
                let (xs, ys) = rows_for(i);
                // Dribble rows in small chunks to force many poll ticks.
                let mut payload = String::new();
                for (j, (x, y)) in xs.iter().zip(&ys).enumerate() {
                    let _ = writeln!(payload, "{x},{y}");
                    if j % 7 == 6 {
                        sock.write_all(payload.as_bytes()).expect("rows");
                        payload.clear();
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                sock.write_all(payload.as_bytes()).expect("tail rows");
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }

    // Every subscriber of query i receives exactly the reference lines,
    // in order, bytes for bytes.
    for (qi, reader) in &mut subscribers {
        let want = &expected[*qi];
        assert!(!want.is_empty(), "reference produced no lines for q{qi}");
        for (n, want_line) in want.iter().enumerate() {
            let got = read_line(reader);
            assert_eq!(&got, want_line, "q{qi} line {n} diverged over the wire");
        }
    }

    // The same listener answers /metrics with a strictly parseable
    // exposition reflecting the traffic above.
    let mut sock = connect(&server);
    sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("request");
    let mut response = String::new();
    sock.read_to_string(&mut response).expect("response");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"));
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    let parsed = parse_text(body).expect("strict parse");
    assert!(parsed.families_without_help().is_empty(), "family without help text");
    let total_rows = (STREAMS * ROWS_PER_STREAM) as f64;
    assert_eq!(parsed.get("datacell_net_ingest_rows_total", &[]), Some(total_rows));
    assert!(parsed.get("datacell_net_fanout_rows_total", &[]).expect("fanout family") > 0.0);
    assert!(parsed.get("datacell_net_connections_total", &[]).expect("conn family") >= 10.0);

    let engine = server.shutdown();
    // Everything arrived: every stream saw all its rows.
    for i in 0..STREAMS {
        let b = engine.basket(&format!("s{i}")).expect("basket");
        assert_eq!(b.end_oid(), ROWS_PER_STREAM as u64, "s{i} lost rows");
    }
}

#[test]
fn stalled_subscriber_is_evicted_and_cannot_pin_gc() {
    let mut engine = Engine::new();
    engine.create_stream("t", &[("x", DataType::Int), ("tag", DataType::Str)]).expect("stream");
    // Every row is its own window: result volume ≈ ingest volume, so a
    // non-reading subscriber's queue must fill quickly.
    engine.register_sql("SELECT x, count(tag) FROM t GROUP BY x WINDOW SIZE 1 SLIDE 1").expect("q");
    let cfg = NetConfig { subscriber_queue: 4096, ..NetConfig::default() };
    let server = NetServer::spawn(engine, "127.0.0.1:0", cfg).expect("spawn");

    // A subscriber that handshakes and then never reads again.
    let stalled = connect(&server);
    let mut reader = BufReader::new(stalled);
    reader.get_mut().write_all(b"SUBSCRIBE q0\n").expect("send");
    assert_eq!(read_line(&mut reader), "OK subscribe q0");

    // Pump enough wide rows through that the results overrun both kernel
    // socket buffers and the 4 KiB server-side queue.
    let total: usize = 4000;
    let mut sock = TcpStream::connect(server.local_addr()).expect("writer");
    sock.write_all(b"INGEST t\n").expect("hello");
    let tag = "z".repeat(120);
    for j in 0..total {
        sock.write_all(format!("{j},{tag}\n").as_bytes()).expect("row");
    }
    sock.flush().expect("flush");

    // The server must disconnect the stalled subscriber instead of letting
    // its unconsumed cursor freeze basket expiry.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().subscriber_overflows.get() == 0 {
        assert!(Instant::now() < deadline, "stalled subscriber was never evicted");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Ingest keeps flowing after the eviction.
    drop(sock);
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().ingest_rows.get() < total as u64 {
        assert!(Instant::now() < deadline, "ingest stalled after eviction");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(20)); // a few ticks of GC

    let engine = server.shutdown();
    // With the subscriber gone, the output basket was expired in full —
    // bounded growth, not a permanent pin at the dead consumer's cursor.
    assert_eq!(engine.basket_len("q0.out").expect("out basket"), 0);
    // And the input basket's prefix was consumed and expired as usual.
    let retained = engine.basket_len("t").expect("input basket");
    assert!(retained < total / 2, "input basket retained {retained} of {total} rows");
    drop(reader);
}

#[test]
fn backpressure_pauses_ingest_reads_when_nothing_consumes() {
    let mut engine = Engine::new();
    // No query reads `u`: nothing ever consumes, so the backlog can only
    // grow and must trip the staging budget.
    engine.create_stream("u", &[("x", DataType::Int)]).expect("stream");
    let cfg = NetConfig { staging_budget: 64, ..NetConfig::default() };
    let server = NetServer::spawn(engine, "127.0.0.1:0", cfg).expect("spawn");

    let mut sock = connect(&server);
    sock.write_all(b"INGEST u\n").expect("hello");
    for j in 0..2000 {
        sock.write_all(format!("{j}\n").as_bytes()).expect("row");
    }

    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().backpressure_ticks.get() == 0 {
        assert!(Instant::now() < deadline, "staging budget never engaged");
        std::thread::sleep(Duration::from_millis(2));
    }
    // The valve pauses *reads*; the already-accepted backlog stays put and
    // the server stays responsive (metrics still answers on the listener).
    let mut m = connect(&server);
    m.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("request");
    let mut response = String::new();
    m.read_to_string(&mut response).expect("response");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"));

    let engine = server.shutdown();
    let landed = engine.basket_len("u").expect("basket");
    assert!(landed >= 64, "budget tripped before any rows landed ({landed})");
    drop(sock);
}
