//! Property tests on the column-store kernel: every bulk operator agrees
//! with a naive row-at-a-time reference implementation, and algebraic
//! identities the incremental rewriter relies on actually hold — plus the
//! basket layer's sharded-ingest law: any interleaved append schedule
//! through a `ShardedBasket` drains to the same stream a sequential
//! `SharedBasket` produces.

use datacell::basket::{Basket, ShardedBasket, SharedBasket};
use datacell::kernel::algebra::{self, AggKind, Predicate};
use datacell::kernel::par::{self, ParConfig, PlacementMode};
use datacell::kernel::{Bat, Column, DataType, Value};
use proptest::prelude::*;

fn int_bat(vals: &[i64], hseq: u64) -> Bat {
    Bat::new(hseq, Column::Int(vals.to_vec()))
}

/// Sorted (left, right) oid pairs of a join result — the pair *set*.
fn pair_set(lo: &Bat, ro: &Bat) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = lo
        .tail
        .as_oid()
        .unwrap()
        .iter()
        .zip(ro.tail.as_oid().unwrap())
        .map(|(&a, &b)| (a, b))
        .collect();
    v.sort_unstable();
    v
}

fn plan_window_int(keys: &[i64], vals: &[i64]) -> datacell::basket::BasicWindow {
    datacell::basket::BasicWindow::new(
        0,
        vec![Column::Int(keys.to_vec()), Column::Int(vals.to_vec())],
        vec![0; keys.len()],
        vec!["k".into(), "v".into()],
    )
}

/// Execute an unfused multi-aggregate Group/GroupKeys/GroupedAgg chain
/// and its `fuse_group_agg`-lowered form over the same window; the fused
/// plan must reproduce the unfused rows exactly at partition fan-out `p`.
fn fused_vs_unfused(
    w: &datacell::basket::BasicWindow,
    p: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    use datacell::plan::exec::{execute, WindowCtx};
    use datacell::plan::mal::{MalBuilder, MalOp};
    let mut b = MalBuilder::new();
    let k = b.emit(MalOp::BindStream { stream: "s".into(), attr: "k".into() });
    let v = b.emit(MalOp::BindStream { stream: "s".into(), attr: "v".into() });
    let g = b.emit(MalOp::Group { keys: k });
    let gk = b.emit(MalOp::GroupKeys { groups: g, keys: k });
    let s = b.emit(MalOp::GroupedAgg { kind: AggKind::Sum, vals: Some(v), groups: g });
    let n = b.emit(MalOp::GroupedAgg { kind: AggKind::Count, vals: None, groups: g });
    let mx = b.emit(MalOp::GroupedAgg { kind: AggKind::Max, vals: Some(v), groups: g });
    let a = b.emit(MalOp::GroupedAgg { kind: AggKind::Avg, vals: Some(v), groups: g });
    let plan = b.finish(
        vec!["k".into(), "sum".into(), "n".into(), "max".into(), "avg".into()],
        vec![gk, s, n, mx, a],
    );
    let fused = datacell::plan::fuse_group_agg(&plan);
    prop_assert!(fused.instrs.iter().any(|i| matches!(i.op, MalOp::GroupAgg { .. })));
    let reference = execute(&plan, &WindowCtx::new().with_stream("s", w)).unwrap();
    let ctx = WindowCtx::new().with_stream("s", w).with_partitions(p);
    let got = execute(&fused, &ctx).unwrap();
    prop_assert_eq!(got.rows(), reference.rows(), "P={}", p);
    Ok(())
}

/// Grouped sum/count/avg over `kb`/`vb` under both placement modes at
/// P ∈ {1, 2, 8} must equal the sequential group-then-aggregate chain
/// *exactly* — values, key order, column layout. Aligned placement
/// scatters rows by the canonical key-hash (merge-free concat); round
/// robin chunks and re-groups; neither may be observable in the result.
fn placement_tri_equivalence(
    kb: &Bat,
    vb: &Bat,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let g = algebra::group(kb).unwrap();
    let seq_keys = g.keys(kb).unwrap();
    let seq_sums = algebra::sum_grouped(vb, &g).unwrap();
    let seq_counts = algebra::count_grouped(&g);
    let seq_avgs = algebra::map_arith(
        &Bat::transient(seq_sums.clone()),
        &Bat::transient(seq_counts.clone()),
        algebra::ArithOp::Div,
    )
    .unwrap()
    .tail;
    let specs: Vec<par::AggSpec> =
        vec![(AggKind::Sum, Some(vb)), (AggKind::Count, None), (AggKind::Avg, Some(vb))];
    for p in [1usize, 2, 8] {
        for mode in [PlacementMode::RoundRobin, PlacementMode::Aligned] {
            let cfg = ParConfig::new(p).with_placement(mode);
            let (pk, cols) = par::grouped_agg_multi(kb, &specs, &cfg).unwrap();
            prop_assert_eq!(&pk, &seq_keys, "keys P={} {:?}", p, mode);
            prop_assert_eq!(&cols[0], &seq_sums, "sums P={} {:?}", p, mode);
            prop_assert_eq!(&cols[1], &seq_counts, "counts P={} {:?}", p, mode);
            prop_assert_eq!(&cols[2], &seq_avgs, "avgs P={} {:?}", p, mode);
        }
    }
    Ok(())
}

/// Nested-loop reference join over generic keys.
fn nested_loop<T: PartialEq>(l: &[T], r: &[T], l_hseq: u64, r_hseq: u64) -> Vec<(u64, u64)> {
    let mut expect = Vec::new();
    for (i, x) in l.iter().enumerate() {
        for (j, y) in r.iter().enumerate() {
            if x == y {
                expect.push((l_hseq + i as u64, r_hseq + j as u64));
            }
        }
    }
    expect.sort_unstable();
    expect
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn select_agrees_with_naive(vals in prop::collection::vec(-100i64..100, 0..200), thr in -100i64..100, hseq in 0u64..1000) {
        let b = int_bat(&vals, hseq);
        let cands = algebra::select(&b, &Predicate::gt(thr)).unwrap();
        let expect: Vec<u64> = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > thr)
            .map(|(i, _)| hseq + i as u64)
            .collect();
        prop_assert_eq!(cands.tail.as_oid().unwrap(), &expect[..]);
    }

    #[test]
    fn select_then_fetch_roundtrips(vals in prop::collection::vec(-50i64..50, 1..100), thr in -50i64..50) {
        // fetch(select(x, p), x) == filter(x, p): the select/fetch pair is
        // exactly row-level filtering.
        let b = int_bat(&vals, 7);
        let cands = algebra::select(&b, &Predicate::gt(thr)).unwrap();
        let fetched = algebra::fetch(&cands, &b).unwrap();
        let expect: Vec<i64> = vals.iter().copied().filter(|&v| v > thr).collect();
        prop_assert_eq!(fetched.tail.as_int().unwrap(), &expect[..]);
    }

    #[test]
    fn split_concat_identity(vals in prop::collection::vec(-50i64..50, 1..120), parts in 1usize..8) {
        // concat(split(x)) == x — the foundation of basic-window splitting.
        let b = int_bat(&vals, 0);
        let n = vals.len();
        let chunk = n.div_ceil(parts);
        let mut pieces = Vec::new();
        let mut off = 0;
        while off < n {
            let len = chunk.min(n - off);
            pieces.push(Bat::new(off as u64, b.tail.slice_owned(off, len)));
            off += len;
        }
        let refs: Vec<&Bat> = pieces.iter().collect();
        let merged = algebra::concat(&refs).unwrap();
        prop_assert_eq!(merged.tail.as_int().unwrap(), &vals[..]);
    }

    #[test]
    fn partial_aggregation_compensates(vals in prop::collection::vec(-100i64..100, 1..200), cut in 0usize..200) {
        // sum(x) == sum(sum(x[..k]), sum(x[k..])) and likewise min/max —
        // the scalar compensation rule.
        let cut = cut.min(vals.len());
        let (a, b) = vals.split_at(cut);
        let whole = int_bat(&vals, 0);
        let pa = int_bat(a, 0);
        let pb = int_bat(b, 0);

        let total = algebra::sum(&whole).unwrap();
        let (sa, sb) = (algebra::sum(&pa).unwrap(), algebra::sum(&pb).unwrap());
        let merged = match (sa, sb) {
            (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
            _ => unreachable!(),
        };
        prop_assert_eq!(total, merged);

        let mins: Vec<Value> = [algebra::min(&pa).unwrap(), algebra::min(&pb).unwrap()]
            .into_iter()
            .flatten()
            .collect();
        let merged_min = mins.iter().cloned().min_by(datacell::prelude::Value::total_cmp);
        prop_assert_eq!(algebra::min(&whole).unwrap(), merged_min);
    }

    #[test]
    fn group_partition_law(keys in prop::collection::vec(0i64..6, 1..120), split in 1usize..119) {
        // Grouped sums computed per part and re-merged equal whole-input
        // grouped sums — Fig 3d's compensation, at kernel level.
        let vals: Vec<i64> = keys.iter().map(|k| k * 3 + 1).collect();
        let split = split.min(keys.len());

        // Whole.
        let kb = int_bat(&keys, 0);
        let vb = int_bat(&vals, 0);
        let g = algebra::group(&kb).unwrap();
        let whole_keys = g.keys(&kb).unwrap();
        let whole_sums = algebra::sum_grouped(&vb, &g).unwrap();
        let mut expect: std::collections::BTreeMap<i64, i64> = Default::default();
        for (i, k) in whole_keys.iter_values().enumerate() {
            if let (Value::Int(k), Some(Value::Int(s))) = (k, whole_sums.get(i)) {
                expect.insert(k, s);
            }
        }

        // Parts, merged via re-group.
        let mut part_keys = Column::Int(vec![]);
        let mut part_sums = Column::Int(vec![]);
        for (ks, vs) in [(&keys[..split], &vals[..split]), (&keys[split..], &vals[split..])] {
            if ks.is_empty() { continue; }
            let kb = int_bat(ks, 0);
            let vb = int_bat(vs, 0);
            let g = algebra::group(&kb).unwrap();
            part_keys.append(&g.keys(&kb).unwrap()).unwrap();
            part_sums.append(&algebra::sum_grouped(&vb, &g).unwrap()).unwrap();
        }
        let g2 = algebra::group(&Bat::transient(part_keys.clone())).unwrap();
        let merged_keys = g2.keys(&Bat::transient(part_keys)).unwrap();
        let merged_sums = algebra::sum_grouped(&Bat::transient(part_sums), &g2).unwrap();
        let mut got: std::collections::BTreeMap<i64, i64> = Default::default();
        for (i, k) in merged_keys.iter_values().enumerate() {
            if let (Value::Int(k), Some(Value::Int(s))) = (k, merged_sums.get(i)) {
                got.insert(k, s);
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn join_agrees_with_nested_loops(
        l in prop::collection::vec(0i64..8, 0..50),
        r in prop::collection::vec(0i64..8, 0..50),
    ) {
        let lb = int_bat(&l, 0);
        let rb = int_bat(&r, 100);
        let (lo, ro) = algebra::hashjoin(&lb, &rb).unwrap();
        let mut got: Vec<(u64, u64)> = lo
            .tail
            .as_oid()
            .unwrap()
            .iter()
            .zip(ro.tail.as_oid().unwrap())
            .map(|(&a, &b)| (a, b))
            .collect();
        got.sort_unstable();
        let mut expect = Vec::new();
        for (i, &x) in l.iter().enumerate() {
            for (j, &y) in r.iter().enumerate() {
                if x == y {
                    expect.push((i as u64, 100 + j as u64));
                }
            }
        }
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn join_block_decomposition(
        l in prop::collection::vec(0i64..5, 2..40),
        r in prop::collection::vec(0i64..5, 2..40),
    ) {
        // |join(L, R)| == Σ |join(Li, Rj)| over any block partitioning —
        // the n×n matrix replication invariant of Fig 3e.
        let lb = int_bat(&l, 0);
        let rb = int_bat(&r, 0);
        let (lo, _) = algebra::hashjoin(&lb, &rb).unwrap();
        let whole = lo.len();

        let lmid = l.len() / 2;
        let rmid = r.len() / 2;
        let mut pieces = 0;
        for (ls, lh) in [(&l[..lmid], 0u64), (&l[lmid..], lmid as u64)] {
            for (rs, rh) in [(&r[..rmid], 0u64), (&r[rmid..], rmid as u64)] {
                let (o, _) = algebra::hashjoin(&int_bat(ls, lh), &int_bat(rs, rh)).unwrap();
                pieces += o.len();
            }
        }
        prop_assert_eq!(whole, pieces);
    }

    #[test]
    fn distinct_of_concat_of_distincts(
        a in prop::collection::vec(0i64..10, 0..60),
        b in prop::collection::vec(0i64..10, 0..60),
    ) {
        // distinct(concat(distinct(a), distinct(b))) == distinct(concat(a, b))
        // as sets — the distinct compensation rule.
        let whole = {
            let mut c = a.clone();
            c.extend_from_slice(&b);
            let d = algebra::distinct(&int_bat(&c, 0)).unwrap();
            let mut v = d.tail.as_int().unwrap().to_vec();
            v.sort_unstable();
            v
        };
        let parts = {
            let da = algebra::distinct(&int_bat(&a, 0)).unwrap();
            let db = algebra::distinct(&int_bat(&b, 0)).unwrap();
            let cc = algebra::concat(&[&da, &db]).unwrap();
            let d = algebra::distinct(&cc).unwrap();
            let mut v = d.tail.as_int().unwrap().to_vec();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(whole, parts);
    }

    #[test]
    fn sort_is_sorted_and_permutation(vals in prop::collection::vec(-100i64..100, 0..100)) {
        let b = int_bat(&vals, 0);
        let s = algebra::sort(&b).unwrap();
        let out = s.tail.as_int().unwrap();
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        let mut a = vals.clone();
        let mut bb = out.to_vec();
        a.sort_unstable();
        bb.sort_unstable();
        prop_assert_eq!(a, bb);
    }

    #[test]
    fn join_nested_loop_reference_int(
        l in prop::collection::vec(0i64..8, 0..60),
        r in prop::collection::vec(0i64..8, 0..45),
        l_hseq in 0u64..100,
        r_hseq in 100u64..200,
    ) {
        // Duplicate-heavy keys (domain 8), mismatched sizes, empty sides:
        // the sequential join and every partitioned fan-out must produce
        // exactly the nested-loop pair set.
        let lb = Bat::new(l_hseq, Column::Int(l.clone()));
        let rb = Bat::new(r_hseq, Column::Int(r.clone()));
        let expect = nested_loop(&l, &r, l_hseq, r_hseq);
        let (slo, sro) = algebra::hashjoin(&lb, &rb).unwrap();
        prop_assert_eq!(pair_set(&slo, &sro), expect.clone());
        for p in [1usize, 2, 8] {
            let (plo, pro) = par::hashjoin(&lb, &rb, &ParConfig::new(p)).unwrap();
            prop_assert_eq!(pair_set(&plo, &pro), expect.clone(), "P={}", p);
            if p == 1 {
                // P=1 dispatches to the sequential path: byte-identical,
                // including pair order.
                prop_assert_eq!(&plo, &slo);
                prop_assert_eq!(&pro, &sro);
            }
        }
    }

    #[test]
    fn join_nested_loop_reference_str(
        l in prop::collection::vec(0u8..4, 0..40),
        r in prop::collection::vec(0u8..4, 0..30),
    ) {
        // String keys from a tiny alphabet: many duplicates and collisions.
        let key = |c: u8| ["a", "b", "aa", "ab"][c as usize].to_string();
        let l: Vec<String> = l.into_iter().map(key).collect();
        let r: Vec<String> = r.into_iter().map(key).collect();
        let lb = Bat::new(7, Column::Str(l.clone()));
        let rb = Bat::new(500, Column::Str(r.clone()));
        let expect = nested_loop(&l, &r, 7, 500);
        let (slo, sro) = algebra::hashjoin(&lb, &rb).unwrap();
        prop_assert_eq!(pair_set(&slo, &sro), expect.clone());
        for p in [2usize, 8] {
            let (plo, pro) = par::hashjoin(&lb, &rb, &ParConfig::new(p)).unwrap();
            prop_assert_eq!(pair_set(&plo, &pro), expect.clone(), "P={}", p);
        }
    }

    #[test]
    fn par_select_byte_identical(
        vals in prop::collection::vec(-100i64..100, 0..200),
        thr in -100i64..100,
        hseq in 0u64..1000,
    ) {
        // Morsels are ascending ranges, so chunk-parallel select must be
        // byte-identical to the sequential candidate list at every P.
        let b = int_bat(&vals, hseq);
        let seq = algebra::select(&b, &Predicate::gt(thr)).unwrap();
        for p in [1usize, 2, 8] {
            let par = par::select(&b, &Predicate::gt(thr), &ParConfig::new(p)).unwrap();
            prop_assert_eq!(&par, &seq, "P={}", p);
        }
    }

    #[test]
    fn par_grouped_agg_byte_identical(
        keys in prop::collection::vec(0i64..6, 0..150),
    ) {
        // Partial grouped aggregates merged by re-group reproduce the
        // sequential group-then-aggregate exactly — including the
        // first-occurrence key order.
        let vals: Vec<i64> = keys.iter().map(|k| k * 3 + 1).collect();
        let kb = int_bat(&keys, 0);
        let vb = int_bat(&vals, 0);
        let g = algebra::group(&kb).unwrap();
        let seq_keys = g.keys(&kb).unwrap();
        let seq_sums = algebra::sum_grouped(&vb, &g).unwrap();
        for p in [1usize, 2, 8] {
            let (pk, ps) = par::grouped_agg(&kb, Some(&vb), AggKind::Sum, &ParConfig::new(p)).unwrap();
            prop_assert_eq!(&pk, &seq_keys, "keys P={}", p);
            prop_assert_eq!(&ps, &seq_sums, "sums P={}", p);
        }
    }

    #[test]
    fn par_grouped_agg_multi_matches_sequential_chain(
        keys in prop::collection::vec(0i64..6, 0..150),
    ) {
        // The fused multi-aggregate kernel (one grouping pass for sum,
        // count, min and avg — avg expanded to sum/count internally)
        // reproduces the sequential group-then-aggregate chain exactly
        // at every P, including the division the executor applies for avg.
        let vals: Vec<i64> = keys.iter().map(|k| k * 3 + 1).collect();
        let kb = int_bat(&keys, 0);
        let vb = int_bat(&vals, 0);
        let g = algebra::group(&kb).unwrap();
        let seq_keys = g.keys(&kb).unwrap();
        let seq_sums = algebra::sum_grouped(&vb, &g).unwrap();
        let seq_counts = algebra::count_grouped(&g);
        let seq_mins = algebra::min_grouped(&vb, &g).unwrap();
        let seq_avgs = algebra::map_arith(
            &Bat::transient(seq_sums.clone()),
            &Bat::transient(seq_counts.clone()),
            algebra::ArithOp::Div,
        ).unwrap().tail;
        let specs: Vec<par::AggSpec> = vec![
            (AggKind::Sum, Some(&vb)),
            (AggKind::Count, None),
            (AggKind::Min, Some(&vb)),
            (AggKind::Avg, Some(&vb)),
        ];
        for p in [1usize, 2, 8] {
            let (pk, cols) = par::grouped_agg_multi(&kb, &specs, &ParConfig::new(p)).unwrap();
            prop_assert_eq!(&pk, &seq_keys, "keys P={}", p);
            prop_assert_eq!(&cols[0], &seq_sums, "sums P={}", p);
            prop_assert_eq!(&cols[1], &seq_counts, "counts P={}", p);
            prop_assert_eq!(&cols[2], &seq_mins, "mins P={}", p);
            prop_assert_eq!(&cols[3], &seq_avgs, "avgs P={}", p);
        }
    }

    #[test]
    fn par_grouped_avg_matches_sequential(
        keys in prop::collection::vec(0i64..5, 0..120),
    ) {
        // The satellite fix, property-tested: avg through the single-agg
        // entry point equals (sequential sums) / (sequential counts) at
        // P ∈ {1, 2, 8} — no more Unsupported rejection.
        let vals: Vec<i64> = keys.iter().map(|k| k * 11 + 3).collect();
        let kb = int_bat(&keys, 0);
        let vb = int_bat(&vals, 0);
        let g = algebra::group(&kb).unwrap();
        let expect = algebra::map_arith(
            &Bat::transient(algebra::sum_grouped(&vb, &g).unwrap()),
            &Bat::transient(algebra::count_grouped(&g)),
            algebra::ArithOp::Div,
        ).unwrap().tail;
        for p in [1usize, 2, 8] {
            let (_, avgs) = par::grouped_agg(&kb, Some(&vb), AggKind::Avg, &ParConfig::new(p)).unwrap();
            prop_assert_eq!(&avgs, &expect, "P={}", p);
        }
    }

    #[test]
    fn fused_plan_matches_unfused_plan_int_keys(
        keys in prop::collection::vec(0i64..7, 0..120),
        p_idx in 0usize..3,
    ) {
        let vals: Vec<i64> = keys.iter().enumerate().map(|(i, k)| k * 5 + i as i64).collect();
        let w = plan_window_int(&keys, &vals);
        fused_vs_unfused(&w, [1usize, 2, 8][p_idx])?;
    }

    #[test]
    fn fused_plan_matches_unfused_plan_string_keys(
        keys in prop::collection::vec(0u8..4, 0..100),
        p_idx in 0usize..3,
    ) {
        let names = ["a", "b", "aa", "ab"];
        let ks: Vec<String> = keys.iter().map(|&c| names[c as usize].to_string()).collect();
        let vals: Vec<i64> = (0..ks.len() as i64).collect();
        let n = ks.len();
        let w = datacell::basket::BasicWindow::new(
            0,
            vec![Column::Str(ks), Column::Int(vals)],
            vec![0; n],
            vec!["k".into(), "v".into()],
        );
        fused_vs_unfused(&w, [1usize, 2, 8][p_idx])?;
    }

    #[test]
    fn sharded_append_schedule_matches_sequential_reference(
        // A schedule of (shard hint, batch, clock increment, seal?) steps:
        // the proptest explores arbitrary single-writer interleavings
        // across shards, batch shapes (empty batches included) and seal
        // points — the deterministic core of what racing receptors do.
        schedule in prop::collection::vec(
            (0usize..8, prop::collection::vec(-50i64..50, 0..5), 0u64..3, any::<bool>()),
            0..40,
        ),
    ) {
        let drained = |b: &SharedBasket| {
            b.with(|bk| {
                let w = bk.snapshot();
                (
                    w.base_oid(),
                    w.col(0).unwrap().as_int().unwrap().to_vec(),
                    w.timestamps().to_vec(),
                )
            })
        };
        for shards in [1usize, 2, 8] {
            let sharded = ShardedBasket::new(Basket::new("s", &[("x", DataType::Int)]), shards);
            let reference = SharedBasket::new(Basket::new("s", &[("x", DataType::Int)]));
            let mut ts = 0u64;
            for (shard, vals, dt, seal) in &schedule {
                ts += dt;
                let batch = [Column::Int(vals.clone())];
                sharded.append_shard(*shard, &batch, ts).unwrap();
                reference.append(&batch, ts).unwrap();
                if *seal {
                    sharded.seal();
                }
            }
            sharded.seal();
            // The sealed stream is *exactly* the sequential stream — same
            // oids, same values, same stamps (which implies the equal-
            // multiset law) — and staging is empty.
            prop_assert_eq!(sharded.staged_len(), 0, "shards={}", shards);
            prop_assert_eq!(drained(&sharded.shared()), drained(&reference), "shards={}", shards);
            prop_assert_eq!(sharded.end_oid(), reference.end_oid(), "shards={}", shards);
        }
    }

    #[test]
    fn sharded_drain_equals_reference_across_expiry(
        schedule in prop::collection::vec(
            (0usize..4, prop::collection::vec(0i64..100, 1..4), any::<bool>()),
            1..30,
        ),
        expire_each in 1u64..6,
    ) {
        // Same law with expiry churning the merged view between appends:
        // consumed prefixes disappear identically on both paths and the
        // suffix still matches.
        for shards in [1usize, 2, 8] {
            let sharded = ShardedBasket::new(Basket::new("s", &[("x", DataType::Int)]), shards);
            let reference = SharedBasket::new(Basket::new("s", &[("x", DataType::Int)]));
            for (i, (shard, vals, seal)) in schedule.iter().enumerate() {
                let batch = [Column::Int(vals.clone())];
                sharded.append_shard(*shard, &batch, i as u64).unwrap();
                reference.append(&batch, i as u64).unwrap();
                if *seal {
                    sharded.seal();
                    let upto = sharded.end_oid().saturating_sub(expire_each);
                    sharded.with(|b| b.expire_upto(upto));
                    reference.with(|b| b.expire_upto(upto));
                }
            }
            sharded.seal();
            let suffix = |b: &SharedBasket| {
                b.with(|bk| {
                    let w = bk.snapshot();
                    (w.base_oid(), w.col(0).unwrap().as_int().unwrap().to_vec())
                })
            };
            // Align both views at the same expiry front before comparing
            // (reference expiry used the sharded view's frontier, which
            // may trail the reference when data was staged).
            let front = sharded.base_oid().max(reference.base_oid());
            sharded.with(|b| b.expire_upto(front));
            reference.with(|b| b.expire_upto(front));
            prop_assert_eq!(suffix(&sharded.shared()), suffix(&reference), "shards={}", shards);
        }
    }

    #[test]
    fn placement_modes_agree_with_sequential_int_keys(
        keys in prop::collection::vec(-20i64..20, 0..150),
    ) {
        let vals: Vec<i64> = keys.iter().enumerate().map(|(i, k)| k * 7 + i as i64).collect();
        placement_tri_equivalence(&int_bat(&keys, 0), &int_bat(&vals, 0))?;
    }

    #[test]
    fn placement_modes_agree_with_sequential_string_keys(
        keys in prop::collection::vec(0u8..5, 0..120),
    ) {
        let names = ["a", "b", "aa", "stream", "basket"];
        let ks: Vec<String> = keys.iter().map(|&c| names[c as usize].to_string()).collect();
        let vals: Vec<i64> = (0..ks.len() as i64).map(|i| i * 3 - 40).collect();
        placement_tri_equivalence(
            &Bat::transient(Column::Str(ks)),
            &int_bat(&vals, 0),
        )?;
    }

    #[test]
    fn placement_modes_agree_with_sequential_skewed_keys(
        raw in prop::collection::vec(0u8..100, 1..200),
        hot in -5i64..5,
    ) {
        // ~90% of rows share one hot key — every partition map sends them
        // to a single morsel, so the aligned path degenerates toward
        // sequential on one thread while the others starve. Results must
        // not care.
        let keys: Vec<i64> = raw.iter().map(|&r| if r < 90 { hot } else { i64::from(r) }).collect();
        let vals: Vec<i64> = keys.iter().enumerate().map(|(i, k)| k + i as i64).collect();
        placement_tri_equivalence(&int_bat(&keys, 0), &int_bat(&vals, 0))?;
    }

    #[test]
    fn placement_modes_agree_on_join_pair_sets(
        l in prop::collection::vec(0i64..8, 0..50),
        r in prop::collection::vec(0i64..8, 0..40),
    ) {
        // The radix join partitions by the same canonical Placement map in
        // both modes — outputs must be byte-identical across modes and
        // match the nested-loop pair set at every P.
        let lb = int_bat(&l, 0);
        let rb = int_bat(&r, 300);
        let expect = nested_loop(&l, &r, 0, 300);
        for p in [1usize, 2, 8] {
            let (rlo, rro) = par::hashjoin(&lb, &rb, &ParConfig::new(p)).unwrap();
            let (alo, aro) = par::hashjoin(
                &lb,
                &rb,
                &ParConfig::new(p).with_placement(PlacementMode::Aligned),
            ).unwrap();
            prop_assert_eq!(&alo, &rlo, "left P={}", p);
            prop_assert_eq!(&aro, &rro, "right P={}", p);
            prop_assert_eq!(pair_set(&alo, &aro), expect.clone(), "P={}", p);
        }
    }

    #[test]
    fn par_sort_perm_byte_identical_int_keys(
        vals in prop::collection::vec(-10i64..10, 0..200),
        desc in any::<bool>(),
        hseq in 0u64..1000,
    ) {
        // Keys from a tiny domain force heavy duplicates, so any stability
        // break in the partitioned run-sort or the k-way merge would
        // reorder equal keys and diverge from the sequential permutation.
        // Descending is the same reversed permutation on both paths.
        let b = int_bat(&vals, hseq);
        let mut seq = algebra::sort_perm(&b).unwrap();
        if desc {
            seq.reverse();
        }
        for p in [1usize, 2, 8] {
            let perm = par::sort_perm(&b, desc, &ParConfig::new(p)).unwrap();
            prop_assert_eq!(&perm, &seq, "P={} desc={}", p, desc);
        }
    }

    #[test]
    fn par_sort_byte_identical_string_keys(
        raw in prop::collection::vec(0u8..5, 0..150),
        desc in any::<bool>(),
    ) {
        // Value-sort over string keys: the partitioned path must gather
        // through the exact sequential permutation, clones and all.
        let names = ["a", "b", "aa", "stream", "basket"];
        let ks: Vec<String> = raw.iter().map(|&c| names[c as usize].to_string()).collect();
        let b = Bat::transient(Column::Str(ks));
        let seq = algebra::sort(&b).unwrap();
        let seq = if desc { par::reverse_bat(&seq) } else { seq };
        for p in [1usize, 2, 8] {
            let sorted = par::sort(&b, desc, &ParConfig::new(p)).unwrap();
            prop_assert_eq!(&sorted, &seq, "P={} desc={}", p, desc);
        }
    }

    #[test]
    fn par_fetch_byte_identical(
        vals in prop::collection::vec(-100i64..100, 1..200),
        picks in prop::collection::vec(0usize..1000, 0..300),
        hseq in 0u64..1000,
    ) {
        // Morsels are contiguous candidate ranges concatenated in chunk
        // order, so the parallel gather must be byte-identical at every P
        // — including repeated and out-of-order oids.
        let values = int_bat(&vals, hseq);
        let oids: Vec<u64> = picks.iter().map(|&i| hseq + (i % vals.len()) as u64).collect();
        let cands = Bat::transient(Column::Oid(oids));
        let seq = algebra::fetch(&cands, &values).unwrap();
        for p in [1usize, 2, 8] {
            let fetched = par::fetch(&cands, &values, &ParConfig::new(p)).unwrap();
            prop_assert_eq!(&fetched, &seq, "P={}", p);
        }
    }

    #[test]
    fn par_fetch_byte_identical_string_payload(
        raw in prop::collection::vec(0u8..5, 1..120),
        picks in prop::collection::vec(0usize..1000, 0..200),
    ) {
        let names = ["a", "b", "aa", "stream", "basket"];
        let vals: Vec<String> = raw.iter().map(|&c| names[c as usize].to_string()).collect();
        let values = Bat::transient(Column::Str(vals.clone()));
        let oids: Vec<u64> = picks.iter().map(|&i| (i % vals.len()) as u64).collect();
        let cands = Bat::transient(Column::Oid(oids));
        let seq = algebra::fetch(&cands, &values).unwrap();
        for p in [1usize, 2, 8] {
            let fetched = par::fetch(&cands, &values, &ParConfig::new(p)).unwrap();
            prop_assert_eq!(&fetched, &seq, "P={}", p);
        }
    }

    #[test]
    fn sort_perm_fetch_chain_matches_sequential_order_by(
        keys in prop::collection::vec(-20i64..20, 0..150),
        desc in any::<bool>(),
        hseq in 0u64..1000,
    ) {
        // The executor's ORDER BY chain: SortPerm emits head oids, Fetch
        // reconstructs the payload through them. The whole chain must be
        // P-invariant, not just each operator alone.
        let payload: Vec<i64> = keys.iter().enumerate().map(|(i, k)| k * 7 + i as i64).collect();
        let kb = int_bat(&keys, hseq);
        let pb = int_bat(&payload, hseq);
        let mut chain = Vec::new();
        for p in [1usize, 2, 8] {
            let cfg = ParConfig::new(p);
            let perm = par::sort_perm(&kb, desc, &cfg).unwrap();
            let cands =
                Bat::transient(Column::Oid(perm.iter().map(|&i| hseq + i as u64).collect()));
            chain.push(par::fetch(&cands, &pb, &cfg).unwrap());
        }
        prop_assert_eq!(&chain[1], &chain[0], "P=2 desc={}", desc);
        prop_assert_eq!(&chain[2], &chain[0], "P=8 desc={}", desc);
    }

    #[test]
    fn aligned_input_mark_never_changes_grouped_agg(
        keys in prop::collection::vec(-20i64..20, 0..150),
    ) {
        // The elision tri-equivalence: sequential ≡ round robin ≡ aligned
        // ≡ aligned-with-vouched-input — even though the proptest input is
        // arbitrary, i.e. the vouch is usually a *lie*. The kernel still
        // hashes every key, so a mismarked input degrades to per-row runs
        // but can never corrupt the aggregates.
        let vals: Vec<i64> = keys.iter().enumerate().map(|(i, k)| k * 7 + i as i64).collect();
        let kb = int_bat(&keys, 0);
        let vb = int_bat(&vals, 0);
        placement_tri_equivalence(&kb, &vb)?;
        let g = algebra::group(&kb).unwrap();
        let seq_keys = g.keys(&kb).unwrap();
        let seq_sums = algebra::sum_grouped(&vb, &g).unwrap();
        let specs: Vec<par::AggSpec> = vec![(AggKind::Sum, Some(&vb))];
        for p in [1usize, 2, 8] {
            let cfg = ParConfig::new(p)
                .with_placement(PlacementMode::Aligned)
                .with_aligned_input(true);
            let (pk, cols) = par::grouped_agg_multi(&kb, &specs, &cfg).unwrap();
            prop_assert_eq!(&pk, &seq_keys, "elided keys P={}", p);
            prop_assert_eq!(&cols[0], &seq_sums, "elided sums P={}", p);
        }
    }

    #[test]
    fn aligned_input_mark_never_changes_join(
        l in prop::collection::vec(0i64..8, 0..50),
        r in prop::collection::vec(0i64..8, 0..40),
    ) {
        // Same law for the radix join: the elided partitioning walks
        // partition-change boundaries instead of materializing per-row
        // position pushes, but covers the identical positions on any
        // input — marked output is byte-identical to unmarked at every P
        // and both match the nested-loop pair set.
        let lb = int_bat(&l, 0);
        let rb = int_bat(&r, 300);
        let expect = nested_loop(&l, &r, 0, 300);
        for p in [1usize, 2, 8] {
            let aligned = ParConfig::new(p).with_placement(PlacementMode::Aligned);
            let marked = aligned.with_aligned_input(true);
            let (alo, aro) = par::hashjoin(&lb, &rb, &aligned).unwrap();
            let (mlo, mro) = par::hashjoin(&lb, &rb, &marked).unwrap();
            prop_assert_eq!(&mlo, &alo, "left P={}", p);
            prop_assert_eq!(&mro, &aro, "right P={}", p);
            prop_assert_eq!(pair_set(&mlo, &mro), expect.clone(), "P={}", p);
        }
    }

    #[test]
    fn count_compensated_by_sum(vals in prop::collection::vec(-10i64..10, 0..100), cut in 0usize..100) {
        let cut = cut.min(vals.len());
        let whole = algebra::count(&int_bat(&vals, 0));
        let a = algebra::count(&int_bat(&vals[..cut], 0));
        let b = algebra::count(&int_bat(&vals[cut..], 0));
        let merged = match (a, b) {
            (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
            _ => unreachable!(),
        };
        prop_assert_eq!(whole, merged);
        let _ = AggKind::Count; // rule documented in kernel::algebra
    }
}
