//! THE paper invariant, property-tested: for every query shape and every
//! stream, the incremental plan produces exactly the same window results
//! as full re-evaluation ("the resulting partial results are then merged to
//! yield the complete window result", §3).
//!
//! Randomized over: data, window geometry, selectivity, group domains,
//! join-key domains, and the chunk count m.

use datacell::core::{AdaptiveChunker, ExecMode, RegisterOptions};
use datacell::prelude::*;
use proptest::prelude::*;

/// Run one SQL query in both modes over the same appended data and assert
/// window-by-window equality (rows compared order-insensitively).
fn assert_equivalent(
    schema: &[(&str, DataType)],
    streams: &[(&str, Vec<Column>)],
    sql: &str,
    chunker: Option<AdaptiveChunker>,
) {
    let mut e = Engine::new();
    for (name, _) in streams {
        e.create_stream(name, schema).unwrap();
    }
    let qi =
        e.register_sql_with(sql, RegisterOptions { mode: ExecMode::Incremental, chunker }).unwrap();
    let qr = e
        .register_sql_with(sql, RegisterOptions { mode: ExecMode::Reevaluation, chunker: None })
        .unwrap();
    for (name, cols) in streams {
        e.append(name, cols).unwrap();
    }
    e.run_until_idle().unwrap();
    let ri = e.drain_results(qi).unwrap();
    let rr = e.drain_results(qr).unwrap();
    assert_eq!(ri.len(), rr.len(), "window counts differ for {sql}");
    for (k, (a, b)) in ri.iter().zip(&rr).enumerate() {
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "window {k} differs for {sql}");
    }
}

fn int_cols(xs: Vec<i64>, ys: Vec<i64>) -> Vec<Column> {
    vec![Column::Int(xs), Column::Int(ys)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn select_sum_equivalent(
        data in prop::collection::vec((0i64..50, -100i64..100), 20..200),
        step in 1usize..8,
        n in 2usize..6,
        threshold in 0i64..50,
    ) {
        let size = step * n;
        let xs: Vec<i64> = data.iter().map(|d| d.0).collect();
        let ys: Vec<i64> = data.iter().map(|d| d.1).collect();
        let sql = format!(
            "SELECT sum(x2) FROM s WHERE x1 > {threshold} WINDOW SIZE {size} SLIDE {step}"
        );
        assert_equivalent(
            &[("x1", DataType::Int), ("x2", DataType::Int)],
            &[("s", int_cols(xs, ys))],
            &sql,
            None,
        );
    }

    #[test]
    fn grouped_agg_equivalent(
        data in prop::collection::vec((0i64..8, -50i64..50), 20..150),
        step in 1usize..6,
        n in 2usize..5,
        agg in prop::sample::select(vec!["sum", "min", "max", "count", "avg"]),
    ) {
        let size = step * n;
        let xs: Vec<i64> = data.iter().map(|d| d.0).collect();
        let ys: Vec<i64> = data.iter().map(|d| d.1).collect();
        let sql = format!(
            "SELECT x1, {agg}(x2) FROM s GROUP BY x1 WINDOW SIZE {size} SLIDE {step}"
        );
        assert_equivalent(
            &[("x1", DataType::Int), ("x2", DataType::Int)],
            &[("s", int_cols(xs, ys))],
            &sql,
            None,
        );
    }

    #[test]
    fn scalar_aggs_equivalent(
        data in prop::collection::vec((0i64..30, -50i64..50), 16..120),
        step in 1usize..5,
        n in 2usize..5,
    ) {
        let size = step * n;
        let xs: Vec<i64> = data.iter().map(|d| d.0).collect();
        let ys: Vec<i64> = data.iter().map(|d| d.1).collect();
        let sql = format!(
            "SELECT min(x1), max(x1), count(x1), avg(x2) FROM s WHERE x1 > 5 \
             WINDOW SIZE {size} SLIDE {step}"
        );
        assert_equivalent(
            &[("x1", DataType::Int), ("x2", DataType::Int)],
            &[("s", int_cols(xs, ys))],
            &sql,
            None,
        );
    }

    #[test]
    fn join_equivalent(
        left in prop::collection::vec((0i64..6, 0i64..100), 12..60),
        right in prop::collection::vec((0i64..6, 0i64..100), 12..60),
        step in 1usize..4,
        n in 2usize..4,
    ) {
        let size = step * n;
        let cap = left.len().min(right.len());
        let lk: Vec<i64> = left[..cap].iter().map(|d| d.0).collect();
        let lv: Vec<i64> = left[..cap].iter().map(|d| d.1).collect();
        let rk: Vec<i64> = right[..cap].iter().map(|d| d.0).collect();
        let rv: Vec<i64> = right[..cap].iter().map(|d| d.1).collect();
        let sql = format!(
            "SELECT max(a.v), sum(b.v) FROM a, b WHERE a.k = b.k \
             WINDOW SIZE {size} SLIDE {step}"
        );
        assert_equivalent(
            &[("k", DataType::Int), ("v", DataType::Int)],
            &[("a", int_cols(lk, lv)), ("b", int_cols(rk, rv))],
            &sql,
            None,
        );
    }

    #[test]
    fn landmark_equivalent(
        data in prop::collection::vec((0i64..40, -50i64..50), 10..100),
        step in 1usize..7,
    ) {
        let xs: Vec<i64> = data.iter().map(|d| d.0).collect();
        let ys: Vec<i64> = data.iter().map(|d| d.1).collect();
        let sql = format!(
            "SELECT max(x1), sum(x2), count(x1) FROM s WHERE x1 > 10 \
             WINDOW LANDMARK SLIDE {step}"
        );
        assert_equivalent(
            &[("x1", DataType::Int), ("x2", DataType::Int)],
            &[("s", int_cols(xs, ys))],
            &sql,
            None,
        );
    }

    #[test]
    fn chunked_equivalent(
        data in prop::collection::vec((0i64..20, -50i64..50), 30..150),
        m in prop::sample::select(vec![2usize, 3, 4, 8]),
    ) {
        let (size, step) = (16usize, 8usize);
        let xs: Vec<i64> = data.iter().map(|d| d.0).collect();
        let ys: Vec<i64> = data.iter().map(|d| d.1).collect();
        let sql = format!(
            "SELECT x1, sum(x2) FROM s WHERE x1 > 3 GROUP BY x1 \
             WINDOW SIZE {size} SLIDE {step}"
        );
        assert_equivalent(
            &[("x1", DataType::Int), ("x2", DataType::Int)],
            &[("s", int_cols(xs, ys))],
            &sql,
            Some(AdaptiveChunker::fixed(m)),
        );
    }

    #[test]
    fn distinct_equivalent(
        data in prop::collection::vec(0i64..10, 16..100),
        step in 1usize..5,
        n in 2usize..5,
    ) {
        let size = step * n;
        let ys = vec![0i64; data.len()];
        let sql = format!("SELECT DISTINCT x1 FROM s WINDOW SIZE {size} SLIDE {step}");
        assert_equivalent(
            &[("x1", DataType::Int), ("x2", DataType::Int)],
            &[("s", int_cols(data, ys))],
            &sql,
            None,
        );
    }

    #[test]
    fn orderby_limit_equivalent(
        data in prop::collection::vec(-100i64..100, 16..100),
        step in 1usize..5,
        n in 2usize..5,
        limit in 1usize..10,
    ) {
        let size = step * n;
        let ys = vec![0i64; data.len()];
        let sql = format!(
            "SELECT x1 FROM s ORDER BY x1 LIMIT {limit} WINDOW SIZE {size} SLIDE {step}"
        );
        assert_equivalent(
            &[("x1", DataType::Int), ("x2", DataType::Int)],
            &[("s", int_cols(data, ys))],
            &sql,
            None,
        );
    }
}

#[test]
fn adaptive_chunker_equivalence_on_fixed_workload() {
    // The adaptive controller changes m mid-run; results must not change.
    let xs: Vec<i64> = (0..400).map(|i| (i * 17) % 23).collect();
    let ys: Vec<i64> = (0..400).map(|i| (i * 7) % 101 - 50).collect();
    assert_equivalent(
        &[("x1", DataType::Int), ("x2", DataType::Int)],
        &[("s", int_cols(xs, ys))],
        "SELECT x1, sum(x2) FROM s WHERE x1 > 4 GROUP BY x1 WINDOW SIZE 40 SLIDE 20",
        Some(AdaptiveChunker::new(16, 2)),
    );
}
