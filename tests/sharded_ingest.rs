//! Sharded basket ingestion under real concurrency: many appender threads
//! pushing into one `ShardedBasket` while the engine schedules, seals and
//! garbage-collects. The invariants on trial:
//!
//! * no tuple is lost or duplicated, regardless of thread interleaving;
//! * oids stay dense and monotone (the global allocator contract);
//! * factory results are identical to the single-shard (single-mutex) run
//!   wherever determinism allows, and aggregate-equal where it does not;
//! * `min_consumed`-bounded expiry never reclaims an undrained shard.
//!
//! This file runs under the CI shard matrix (`DATACELL_BASKET_SHARDS=1,4`,
//! one leg crossed with workers=4 × partitions=4): `Engine::new()` picks
//! all three knobs up from the environment, so the same assertions cover
//! the single-mutex path and the sharded path.

use datacell::basket::ReceptorHandle;
use datacell::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

const APPENDERS: usize = 16;
const BATCHES_PER_APPENDER: usize = 50;
const ROWS_PER_BATCH: usize = 4;

fn ingest_basket(shards: usize) -> ShardedBasket {
    ShardedBasket::new(Basket::new("s", &[("x", DataType::Int)]), shards)
}

/// Value encoding: appender id × 1M + sequence, so losses, duplicates and
/// cross-thread mixups all show up in the multiset.
fn expected_values() -> Vec<i64> {
    let mut v: Vec<i64> = (0..APPENDERS as i64)
        .flat_map(|t| {
            (0..(BATCHES_PER_APPENDER * ROWS_PER_BATCH) as i64).map(move |i| t * 1_000_000 + i)
        })
        .collect();
    v.sort_unstable();
    v
}

/// Run 16 appender threads against a basket and return the sealed values.
fn stress(shards: usize) -> (u64, u64, Vec<i64>, Vec<u64>) {
    let sb = ingest_basket(shards);
    let barrier = Arc::new(Barrier::new(APPENDERS));
    let threads: Vec<_> = (0..APPENDERS)
        .map(|tid| {
            let sb = sb.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let shard = sb.assign_shard();
                barrier.wait();
                for b in 0..BATCHES_PER_APPENDER {
                    let base = (tid * 1_000_000 + b * ROWS_PER_BATCH) as i64;
                    let vals: Vec<i64> = (0..ROWS_PER_BATCH as i64).map(|r| base + r).collect();
                    // One shared stamp: across racing appenders there is
                    // no meaningful per-thread arrival order, and the
                    // single-mutex path (shards=1) rejects regressions
                    // rather than clamping them.
                    sb.append_shard(shard, &[Column::Int(vals)], 0).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    sb.seal();
    let (base, end) = (sb.base_oid(), sb.end_oid());
    let (vals, ts) = sb.with(|b| {
        let w = b.snapshot();
        (w.col(0).unwrap().as_int().unwrap().to_vec(), w.timestamps().to_vec())
    });
    (base, end, vals, ts)
}

#[test]
fn sixteen_appenders_lose_and_duplicate_nothing() {
    for shards in [1, 2, 4, 8] {
        let (base, end, vals, ts) = stress(shards);
        let total = (APPENDERS * BATCHES_PER_APPENDER * ROWS_PER_BATCH) as u64;
        // Dense, monotone oids: exactly [0, total) resident.
        assert_eq!(base, 0, "shards={shards}");
        assert_eq!(end, total, "shards={shards}");
        assert_eq!(vals.len() as u64, total, "shards={shards}");
        // Timestamps are non-decreasing in oid order (allocator clamp).
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "shards={shards}: ts regressed");
        // The multiset of values is exactly what the appenders sent.
        let mut sorted = vals;
        sorted.sort_unstable();
        assert_eq!(sorted, expected_values(), "shards={shards}");
    }
}

#[test]
fn per_appender_batch_order_is_preserved() {
    // Oid order must respect each appender's own append order even when
    // appenders interleave arbitrarily — allocation order is the stream
    // order, and one appender's allocations are sequential.
    let (_, _, vals, _) = stress(4);
    let mut last_seen = [-1i64; APPENDERS];
    for v in vals {
        let tid = (v / 1_000_000) as usize;
        let seq = v % 1_000_000;
        assert!(
            seq > last_seen[tid],
            "appender {tid}: value {seq} after {} in oid order",
            last_seen[tid]
        );
        last_seen[tid] = seq;
    }
}

#[test]
fn factory_results_identical_to_single_shard_run() {
    // Deterministic (single-threaded) feeding: the sharded engine must
    // produce byte-identical window results to the 1-shard engine, for
    // both execution modes, across drains and GC cycles.
    let run = |shards: usize| {
        let mut e = Engine::new();
        e.set_basket_shards(shards);
        e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
        let qi = e
            .register_sql(
                "SELECT x1, sum(x2) FROM s WHERE x1 > 1 GROUP BY x1 WINDOW SIZE 8 SLIDE 4",
            )
            .unwrap();
        let qr = e
            .register_sql_with(
                "SELECT count(x1) FROM s WINDOW SIZE 6 SLIDE 3",
                datacell::core::RegisterOptions { mode: ExecMode::Reevaluation, chunker: None },
            )
            .unwrap();
        let mut out = Vec::new();
        for round in 0..6u64 {
            let xs: Vec<i64> = (0..10).map(|i| (i + round as i64) % 5).collect();
            let ys: Vec<i64> = (0..10).map(|i| i * (round as i64 + 1)).collect();
            e.append_at("s", &[Column::Int(xs), Column::Int(ys)], round).unwrap();
            e.run_until_idle().unwrap();
            for q in [qi, qr] {
                out.push(
                    e.drain_results(q)
                        .unwrap()
                        .iter()
                        .map(datacell::plan::ResultSet::rows)
                        .collect::<Vec<_>>(),
                );
            }
        }
        out
    };
    let single = run(1);
    assert!(single.iter().any(|r| !r.is_empty()));
    for shards in [2, 4] {
        assert_eq!(run(shards), single, "shards={shards} diverged from single-shard results");
    }
}

#[test]
fn concurrent_receptor_fleet_aggregates_match_single_shard() {
    // 16 receptor threads feeding one stream concurrently: per-window
    // rows depend on the nondeterministic interleave, but tumbling
    // windows partition the stream, so window count, per-window
    // cardinality and the grand total are interleave-invariant — and
    // must match the single-shard run.
    let run = |shards: usize| {
        let mut e = Engine::new();
        e.set_basket_shards(shards);
        e.create_stream("s", &[("x", DataType::Int)]).unwrap();
        let q = e.register_sql("SELECT sum(x) FROM s WINDOW SIZE 40 SLIDE 40").unwrap();
        let handles: Vec<_> = (0..APPENDERS)
            .map(|tid| {
                let basket = e.basket("s").unwrap();
                let mut left = 25i64;
                ReceptorHandle::spawn(basket, 4, move || {
                    if left == 0 {
                        return None;
                    }
                    left -= 1;
                    Some((0, vec![Column::Int(vec![tid as i64 + 1; 8])]))
                })
            })
            .collect();
        let mut results = Vec::new();
        // 16 threads × 25 batches × 8 rows = 3200 tuples = 80 windows.
        while results.len() < 80 {
            e.run_until_idle().unwrap();
            results.extend(e.drain_results(q).unwrap());
            std::thread::yield_now();
        }
        let delivered: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        e.run_until_idle().unwrap();
        results.extend(e.drain_results(q).unwrap());
        assert_eq!(delivered, 3200);
        assert_eq!(results.len(), 80, "shards={shards}");
        let total: i64 = results.iter().map(|r| r.rows()[0][0].as_i64().unwrap()).sum();
        total
    };
    let expected: i64 = (1..=APPENDERS as i64).map(|v| v * 200).sum();
    assert_eq!(run(1), expected);
    assert_eq!(run(4), expected);
}

#[test]
fn gc_never_reclaims_an_undrained_shard() {
    // A slow factory (window 100) keeps `min_consumed` low while staged
    // segments pile up unsealed; GC runs on every drain. Nothing staged
    // may ever be lost — the final window must see every tuple.
    let mut e = Engine::new();
    e.set_basket_shards(4);
    e.create_stream("s", &[("x", DataType::Int)]).unwrap();
    let slow = e.register_sql("SELECT sum(x) FROM s WINDOW SIZE 100 SLIDE 100").unwrap();
    let fast = e.register_sql("SELECT count(x) FROM s WINDOW SIZE 5 SLIDE 5").unwrap();
    let b = e.basket("s").unwrap();
    for i in 0..20i64 {
        // Two staged appends per round; drains seal + GC in between.
        b.append_shard((i % 4) as usize, &[Column::Int(vec![i * 5 + 1, i * 5 + 2])], 0).unwrap();
        b.append_shard(
            ((i + 1) % 4) as usize,
            &[Column::Int(vec![i * 5 + 3, i * 5 + 4, i * 5 + 5])],
            0,
        )
        .unwrap();
        e.run_until_idle().unwrap();
        // The sealed-but-unconsumed suffix survives: the fast query has
        // consumed everything sealed, the slow one bounds expiry.
        let sealed = b.end_oid() - b.base_oid();
        assert!(sealed <= 100, "GC must keep at most one slow window resident");
    }
    // 20 rounds × 5 tuples = 100: exactly one slow window, sum = 1..=100.
    e.run_until_idle().unwrap();
    let out = e.drain_results(slow).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rows(), vec![vec![Value::Int((1..=100i64).sum())]]);
    assert_eq!(e.drain_results(fast).unwrap().len(), 20);
}

#[test]
fn basket_level_expiry_cannot_touch_staged_segments() {
    // Direct basket-level version of the GC invariant: staged segments
    // sit at or past the sealed frontier, and expiry is capped at that
    // frontier, so even `expire_upto(u64::MAX)` cannot reach them.
    let sb = ingest_basket(4);
    sb.append_shard(0, &[Column::Int(vec![1, 2])], 0).unwrap();
    sb.seal();
    sb.append_shard(1, &[Column::Int(vec![3, 4])], 1).unwrap();
    sb.append_shard(2, &[Column::Int(vec![5])], 2).unwrap();
    sb.with(|b| b.expire_upto(u64::MAX));
    assert_eq!(sb.len(), 0);
    assert_eq!(sb.staged_len(), 3);
    assert_eq!(sb.seal(), 5);
    let vals = sb.with(|b| b.snapshot().col(0).unwrap().as_int().unwrap().to_vec());
    assert_eq!(vals, vec![3, 4, 5]);
    assert_eq!(sb.base_oid(), 2); // expired prefix stays expired
}

#[test]
fn receptor_fleet_with_gc_loop_under_live_engine() {
    // End-to-end churn: 16 receptors feed while a separate thread keeps
    // the engine draining (seal + fire + GC in a loop). Every window of
    // the standing query must come out exactly once.
    let engine = Arc::new(std::sync::Mutex::new({
        let mut e = Engine::new();
        e.set_basket_shards(4);
        e.create_stream("s", &[("x", DataType::Int)]).unwrap();
        e
    }));
    let q = engine
        .lock()
        .unwrap()
        .register_sql("SELECT count(x) FROM s WINDOW SIZE 64 SLIDE 64")
        .unwrap();
    let basket = engine.lock().unwrap().basket("s").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let driver = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut results = Vec::new();
            while !stop.load(Ordering::Acquire) {
                let mut e = engine.lock().unwrap();
                e.run_until_idle().unwrap();
                results.extend(e.drain_results(q).unwrap());
                drop(e);
                std::thread::yield_now();
            }
            let mut e = engine.lock().unwrap();
            e.run_until_idle().unwrap();
            results.extend(e.drain_results(q).unwrap());
            results
        })
    };
    let handles: Vec<_> = (0..APPENDERS)
        .map(|_| {
            let mut left = 16i64;
            ReceptorHandle::spawn(basket.clone(), 2, move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                Some((0, vec![Column::Int(vec![7; 4])]))
            })
        })
        .collect();
    let delivered: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    stop.store(true, Ordering::Release);
    let results = driver.join().unwrap();
    assert_eq!(delivered, APPENDERS * 16 * 4);
    // 1024 tuples / 64 per tumbling window = 16 windows, each count 64.
    assert_eq!(results.len(), 16);
    for r in &results {
        assert_eq!(r.rows(), vec![vec![Value::Int(64)]]);
    }
}
