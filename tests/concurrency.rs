//! Concurrency: threaded receptors feeding baskets while the engine
//! schedules factories — the multi-process shape of the paper's Fig. 1
//! (receptor processes + kernel) on threads.
//!
//! This file runs under the CI worker matrix (`DATACELL_WORKERS=1,2,4`):
//! `Engine::new()` picks the worker count up from the environment, so the
//! same assertions exercise the sequential scheduler and the worker pool.

use datacell::basket::ReceptorHandle;
use datacell::prelude::*;

#[test]
fn threaded_receptor_feeds_running_engine() {
    let mut engine = Engine::new();
    engine.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    let q =
        engine.register_sql("SELECT sum(x2) FROM s WHERE x1 > 0 WINDOW SIZE 40 SLIDE 20").unwrap();

    // Source thread produces 50 batches of 20 tuples.
    let basket = engine.basket("s").unwrap();
    let mut left = 50u64;
    let handle = ReceptorHandle::spawn(basket, 8, move || {
        if left == 0 {
            return None;
        }
        left -= 1;
        Some((50 - left, vec![Column::Int(vec![1; 20]), Column::Int(vec![2; 20])]))
    });

    // Scheduler loop runs concurrently with ingestion.
    let mut results = Vec::new();
    loop {
        engine.run_until_idle().unwrap();
        results.extend(engine.drain_results(q).unwrap());
        if results.len() >= 49 {
            break;
        }
        std::thread::yield_now();
    }
    let delivered = handle.join().unwrap();
    engine.run_until_idle().unwrap();
    results.extend(engine.drain_results(q).unwrap());

    assert_eq!(delivered, 1000);
    // 1000 tuples, window 40 sliding by 20 -> 49 windows.
    assert_eq!(results.len(), 49);
    for w in &results {
        assert_eq!(w.rows(), vec![vec![Value::Int(80)]]); // 40 × 2
    }
}

#[test]
fn two_threaded_receptors_feed_a_join() {
    let mut engine = Engine::new();
    engine.create_stream("a", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    engine.create_stream("b", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
    let q = engine
        .register_sql("SELECT count(a.v) FROM a, b WHERE a.k = b.k WINDOW SIZE 16 SLIDE 8")
        .unwrap();

    let spawn_feeder = |basket, seed: i64| {
        let mut left = 20i64;
        ReceptorHandle::spawn(basket, 4, move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            let ks: Vec<i64> = (0..8).map(|j| (seed + left + j) % 4).collect();
            let vs: Vec<i64> = (0..8).collect();
            Some(((20 - left) as u64, vec![Column::Int(ks), Column::Int(vs)]))
        })
    };
    let h1 = spawn_feeder(engine.basket("a").unwrap(), 0);
    let h2 = spawn_feeder(engine.basket("b").unwrap(), 1);

    let mut produced = 0;
    loop {
        engine.run_until_idle().unwrap();
        produced += engine.drain_results(q).unwrap().len();
        if produced >= 18 {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(h1.join().unwrap(), 160);
    assert_eq!(h2.join().unwrap(), 160);
    engine.run_until_idle().unwrap();
    produced += engine.drain_results(q).unwrap().len();
    // 160 tuples per stream, |W|=16, |w|=8 -> 19 windows.
    assert_eq!(produced, 19);
}

#[test]
fn receptor_fleet_feeds_worker_pool() {
    // Fig. 1 at full fan-out: four receptor threads feed four streams
    // while the worker pool fires four independent standing queries.
    let mut engine = Engine::with_workers(4);
    let mut queries = Vec::new();
    for i in 0..4 {
        let s = format!("s{i}");
        engine.create_stream(&s, &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
        let q = engine
            .register_sql(&format!("SELECT sum(x2) FROM {s} WHERE x1 > 0 WINDOW SIZE 20 SLIDE 10"))
            .unwrap();
        queries.push(q);
    }
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let basket = engine.basket(&format!("s{i}")).unwrap();
            let mut left = 30u64;
            ReceptorHandle::spawn(basket, 4, move || {
                if left == 0 {
                    return None;
                }
                left -= 1;
                Some((30 - left, vec![Column::Int(vec![1; 10]), Column::Int(vec![3; 10])]))
            })
        })
        .collect();

    // 300 tuples per stream, |W|=20, |w|=10 -> 29 windows per query.
    let mut per_query = vec![Vec::new(); 4];
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        engine.run_until_idle().unwrap();
        for (q, out) in queries.iter().zip(&mut per_query) {
            out.extend(engine.drain_results(*q).unwrap());
        }
        if per_query.iter().all(|o| o.len() >= 29) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stalled: {:?} windows after 60s",
            per_query.iter().map(Vec::len).collect::<Vec<_>>()
        );
        std::thread::yield_now();
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 300);
    }
    engine.run_until_idle().unwrap();
    for (q, out) in queries.iter().zip(&mut per_query) {
        out.extend(engine.drain_results(*q).unwrap());
    }
    for out in &per_query {
        assert_eq!(out.len(), 29);
        for w in out {
            assert_eq!(w.rows(), vec![vec![Value::Int(60)]]); // 20 × 3
        }
    }
}
