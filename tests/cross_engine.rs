//! Cross-engine agreement: the tuple-at-a-time SystemX simulator and the
//! DataCell engine must compute identical answers on identical workloads —
//! otherwise the Fig. 9 performance comparison would be comparing
//! different queries.

use datacell::prelude::*;
use proptest::prelude::*;
use sysx::{QuerySpec, SysxEngine, SysxResult};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn q1_same_answers(
        data in prop::collection::vec((0i64..10, 0i64..100), 24..120),
        stepn in 1usize..5,
        n in 2usize..4,
        thr in 0i64..9,
    ) {
        let step = stepn * 2;
        let size = step * n;
        let xs: Vec<i64> = data.iter().map(|d| d.0).collect();
        let ys: Vec<i64> = data.iter().map(|d| d.1).collect();

        // DataCell.
        let mut e = Engine::new();
        e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
        let q = e
            .register_sql(&format!(
                "SELECT x1, sum(x2) FROM s WHERE x1 > {thr} GROUP BY x1 \
                 WINDOW SIZE {size} SLIDE {step}"
            ))
            .unwrap();
        e.append("s", &[Column::Int(xs.clone()), Column::Int(ys.clone())]).unwrap();
        e.run_until_idle().unwrap();
        let dc = e.drain_results(q).unwrap();

        // SystemX.
        let mut sx = SysxEngine::new(QuerySpec::FilterGroupSum { threshold: thr }, size, step);
        for (&x, &y) in xs.iter().zip(&ys) {
            sx.push(x, y);
        }
        let sx_out = sx.drain_results();

        prop_assert_eq!(dc.len(), sx_out.len());
        for (w, (d, s)) in dc.iter().zip(&sx_out).enumerate() {
            let mut d_rows: Vec<(i64, i64)> = d
                .rows()
                .iter()
                .map(|r| match (&r[0], &r[1]) {
                    (Value::Int(k), Value::Int(v)) => (*k, *v),
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            d_rows.sort_unstable();
            match s {
                SysxResult::Groups(g) => prop_assert_eq!(&d_rows, g, "window {}", w),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn q2_same_answers(
        left in prop::collection::vec((0i64..5, 0i64..100), 16..80),
        right in prop::collection::vec((0i64..5, 0i64..100), 16..80),
        stepn in 1usize..4,
        n in 2usize..4,
    ) {
        let step = stepn * 2;
        let size = step * n;
        let cap = left.len().min(right.len());
        let lk: Vec<i64> = left[..cap].iter().map(|d| d.0).collect();
        let lv: Vec<i64> = left[..cap].iter().map(|d| d.1).collect();
        let rk: Vec<i64> = right[..cap].iter().map(|d| d.0).collect();
        let rv: Vec<i64> = right[..cap].iter().map(|d| d.1).collect();

        // DataCell.
        let mut e = Engine::new();
        e.create_stream("a", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        e.create_stream("b", &[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        let q = e
            .register_sql(&format!(
                "SELECT max(a.v), avg(b.v) FROM a, b WHERE a.k = b.k \
                 WINDOW SIZE {size} SLIDE {step}"
            ))
            .unwrap();
        e.append("a", &[Column::Int(lk.clone()), Column::Int(lv.clone())]).unwrap();
        e.append("b", &[Column::Int(rk.clone()), Column::Int(rv.clone())]).unwrap();
        e.run_until_idle().unwrap();
        let dc = e.drain_results(q).unwrap();

        // SystemX.
        let mut sx = SysxEngine::new(QuerySpec::JoinMaxAvg, size, step);
        for i in 0..cap {
            sx.push_left(lk[i], lv[i]);
            sx.push_right(rk[i], rv[i]);
        }
        let sx_out = sx.drain_results();

        prop_assert_eq!(dc.len(), sx_out.len());
        for (w, (d, s)) in dc.iter().zip(&sx_out).enumerate() {
            let SysxResult::Scalars(smax, savg) = s else { panic!("unexpected {s:?}") };
            if d.is_empty() {
                prop_assert!(smax.is_none(), "window {}: datacell empty, sysx {:?}", w, smax);
            } else {
                let row = &d.rows()[0];
                let (Value::Int(dmax), Value::Float(davg)) = (&row[0], &row[1]) else {
                    panic!("unexpected row {row:?}")
                };
                prop_assert_eq!(Some(*dmax as f64), *smax, "max, window {}", w);
                let savg = savg.expect("non-empty window has an avg");
                prop_assert!((davg - savg).abs() < 1e-9, "avg, window {}: {} vs {}", w, davg, savg);
            }
        }
    }
}

#[test]
fn q3_landmark_same_answers() {
    let xs: Vec<i64> = (0..60).map(|i| (i * 13) % 40).collect();
    let ys: Vec<i64> = (0..60).collect();
    let (step, thr) = (10usize, 15i64);

    let mut e = Engine::new();
    e.create_stream("s", &[("x1", DataType::Int), ("x2", DataType::Int)]).unwrap();
    let q = e
        .register_sql(&format!(
            "SELECT max(x1), sum(x2) FROM s WHERE x1 > {thr} WINDOW LANDMARK SLIDE {step}"
        ))
        .unwrap();
    e.append("s", &[Column::Int(xs.clone()), Column::Int(ys.clone())]).unwrap();
    e.run_until_idle().unwrap();
    let dc = e.drain_results(q).unwrap();

    let mut sx =
        SysxEngine::new(QuerySpec::LandmarkFilterMaxSum { threshold: thr }, usize::MAX >> 1, step);
    for (&x, &y) in xs.iter().zip(&ys) {
        sx.push(x, y);
    }
    let sx_out = sx.drain_results();
    assert_eq!(dc.len(), sx_out.len());
    for (d, s) in dc.iter().zip(&sx_out) {
        let SysxResult::Scalars(smax, ssum) = s else { panic!() };
        let row = &d.rows()[0];
        let (Value::Int(dmax), Value::Int(dsum)) = (&row[0], &row[1]) else { panic!() };
        assert_eq!(Some(*dmax as f64), *smax);
        assert_eq!(Some(*dsum as f64), *ssum);
    }
}
