//! Time-based windows over bursty sensor traffic.
//!
//! A monitoring deployment watches a machine-room temperature feed. The
//! feed is bursty: sometimes many readings per second, sometimes silence.
//! Time-based windows (paper §3, *Time-based sliding windows*) handle this
//! naturally: each basic window holds "as many tuples as arrived in the
//! corresponding time interval", and empty intervals are skipped.
//!
//! ```text
//! cargo run --example sensor_monitoring
//! ```

use datacell::prelude::*;

fn main() -> Result<(), DataCellError> {
    let mut engine = Engine::new();
    engine.create_stream("temps", &[("room", DataType::Int), ("temp", DataType::Float)])?;

    // Average temperature per room over the last minute, updated every
    // 15 seconds.
    let avg_q = engine.register_sql(
        "SELECT room, avg(temp) FROM temps GROUP BY room \
         WINDOW RANGE 60 SECONDS SLIDE 15 SECONDS",
    )?;
    // Alert stream: any reading above 90 degrees in the last 15 seconds.
    let alert_q = engine.register_sql(
        "SELECT room, temp FROM temps WHERE temp > 90.0 \
         WINDOW RANGE 15 SECONDS SLIDE 15 SECONDS",
    )?;

    // Simulate one bursty minute + a quiet stretch. Timestamps are
    // milliseconds on the engine's logical clock.
    let bursts: &[(u64, Vec<(i64, f64)>)] = &[
        (1_000, vec![(1, 71.0), (1, 72.5), (2, 68.0)]),
        (9_000, vec![(2, 69.5)]),
        (16_000, vec![(1, 74.0), (2, 93.5)]), // a spike in room 2
        (31_000, vec![]),                     // silence
        (52_000, vec![(1, 70.5), (1, 69.0), (2, 88.0)]),
        (61_000, vec![(1, 70.0)]),
        (76_000, vec![(2, 67.0)]),
    ];
    for (at, readings) in bursts {
        let rooms: Vec<i64> = readings.iter().map(|r| r.0).collect();
        let temps: Vec<f64> = readings.iter().map(|r| r.1).collect();
        engine.append_at("temps", &[Column::Int(rooms), Column::Float(temps)], *at)?;
        engine.run_until_idle()?;
    }
    // Close out the last windows by advancing the clock.
    engine.advance_clock(90_000);
    engine.run_until_idle()?;

    println!("per-room rolling averages (window = 60s, slide = 15s):");
    for (i, w) in engine.drain_results(avg_q)?.iter().enumerate() {
        let t = 60 + i as u64 * 15;
        for row in w.rows() {
            println!("  t={t:>3}s room {} avg {:.2}", row[0], row[1]);
        }
    }

    println!("\nalerts (readings > 90 in the last 15s):");
    for w in engine.drain_results(alert_q)? {
        for row in w.rows() {
            println!("  room {} read {}", row[0], row[1]);
        }
    }
    Ok(())
}
