//! Quickstart: register a stream, a continuous query, feed tuples, read
//! window results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use datacell::prelude::*;

fn main() -> Result<(), DataCellError> {
    // 1. An engine with one input stream: temperature readings
    //    (sensor id, temperature in tenths of a degree).
    let mut engine = Engine::new();
    engine.create_stream("readings", &[("sensor", DataType::Int), ("temp", DataType::Int)])?;

    // 2. A continuous query: per sliding window of 6 readings (sliding by
    //    3), the per-sensor sum of temperatures above 20.0 degrees.
    let q = engine.register_sql(
        "SELECT sensor, sum(temp) FROM readings \
         WHERE temp > 200 \
         GROUP BY sensor \
         WINDOW SIZE 6 SLIDE 3",
    )?;

    // 3. Feed tuples as they "arrive". Batches can be any size; the
    //    scheduler fires the query whenever a window completes.
    engine.append(
        "readings",
        &[Column::Int(vec![1, 2, 1, 2, 1, 2]), Column::Int(vec![195, 210, 220, 199, 230, 240])],
    )?;
    engine.run_until_idle()?;

    engine.append("readings", &[Column::Int(vec![1, 1, 2]), Column::Int(vec![250, 260, 180])])?;
    engine.run_until_idle()?;

    // 4. Drain the produced window results.
    for (i, window) in engine.drain_results(q)?.iter().enumerate() {
        println!("window {i}:");
        for row in window.rows() {
            println!("  sensor {} -> sum {}", row[0], row[1]);
        }
    }

    // 5. Peek at what the incremental rewriter did to the plan.
    let metrics = engine.metrics(q)?;
    println!(
        "\nprocessed {} windows, mean response {:?}",
        metrics.len(),
        metrics.iter().map(|m| m.total).sum::<std::time::Duration>() / metrics.len().max(1) as u32
    );
    Ok(())
}
