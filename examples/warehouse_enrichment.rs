//! Stream ⋈ table: the data-warehouse scenario that motivates the paper.
//!
//! "Data warehousing can greatly benefit from the integration of stream
//! semantics, i.e., online analysis of incoming data and combination with
//! existing data." (paper §1) — a single DataCell factory can read both
//! baskets and persistent tables (Fig. 1), so a continuous query can join
//! a live order stream against a stored product dimension.
//!
//! ```text
//! cargo run --example warehouse_enrichment
//! ```

use datacell::kernel::Table;
use datacell::prelude::*;

fn main() -> Result<(), DataCellError> {
    let mut engine = Engine::new();

    // Persistent dimension table: product id -> unit margin (cents).
    let mut products = Table::new("products", &[("pid", DataType::Int), ("margin", DataType::Int)]);
    products
        .append(&[Column::Int(vec![101, 102, 103, 104]), Column::Int(vec![250, 1200, 80, 430])])?;
    engine.create_table(products)?;

    // Live order stream: (product id, quantity).
    engine.create_stream("orders", &[("pid", DataType::Int), ("qty", DataType::Int)])?;

    // Continuous revenue-margin monitor: per window of 8 orders (slide 4),
    // total margin of orders that matched the product dimension.
    let q = engine.register_sql(
        "SELECT sum(products.margin) FROM orders, products \
         WHERE orders.pid = products.pid \
         WINDOW SIZE 8 SLIDE 4",
    )?;

    // Orders arrive. Some reference unknown products (pid 999) and simply
    // do not match the dimension join.
    let batches: &[(Vec<i64>, Vec<i64>)] = &[
        (vec![101, 102, 999, 103], vec![1, 2, 1, 5]),
        (vec![104, 101, 102, 102], vec![1, 1, 3, 1]),
        (vec![103, 103, 999, 104], vec![2, 2, 9, 1]),
    ];
    for (pids, qtys) in batches {
        engine.append("orders", &[Column::Int(pids.clone()), Column::Int(qtys.clone())])?;
        engine.run_until_idle()?;
    }

    println!("margin per window of 8 orders (sliding by 4):");
    for (i, w) in engine.drain_results(q)?.iter().enumerate() {
        for row in w.rows() {
            println!("  window {i}: total margin {} cents", row[0]);
        }
    }

    // The join against the static table is replicated per basic window by
    // the rewriter — show the plan classification.
    println!("\n(the stream-table join runs per basic window; only the two");
    println!(" new basic windows' joins execute per slide, not the window's)");
    Ok(())
}
