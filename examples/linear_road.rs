//! A simplified Linear Road scenario.
//!
//! The original DataCell paper (EDBT 2009) validated the architecture by
//! "easily meeting the requirements of the Linear Road Benchmark"; this
//! example sketches that workload on the reproduction: cars on a highway
//! report (segment, speed) readings; standing queries maintain per-segment
//! average speeds over a sliding window, detect congested segments, and
//! keep a cumulative count of all reports per segment since startup.
//!
//! ```text
//! cargo run --example linear_road
//! ```

use datacell::prelude::*;

fn main() -> Result<(), DataCellError> {
    let mut engine = Engine::new();
    engine.create_stream("reports", &[("segment", DataType::Int), ("speed", DataType::Int)])?;

    // Per-segment average speed over the last 40 reports, every 20.
    let avg_speed = engine.register_sql(
        "SELECT segment, avg(speed) FROM reports GROUP BY segment \
         WINDOW SIZE 40 SLIDE 20",
    )?;
    // Congestion detector: any report under 30 km/h in the latest slice.
    let congested = engine.register_sql(
        "SELECT segment, speed FROM reports WHERE speed < 30 \
         WINDOW SIZE 20 SLIDE 20",
    )?;
    // Lifetime statistics (landmark): total report count per segment is a
    // grouped count — expressed as count over the whole history.
    let lifetime = engine.register_sql(
        "SELECT segment, count(speed) FROM reports GROUP BY segment \
         WINDOW LANDMARK SLIDE 60",
    )?;

    // Simulate traffic: segment 2 degrades over time.
    let mut reports: Vec<(i64, i64)> = Vec::new();
    for round in 0..60i64 {
        for seg in 0..3i64 {
            let base = match seg {
                2 => (80 - round).max(15), // slowly congesting
                _ => 90 + (round % 7) - 3,
            };
            reports.push((seg, base));
        }
    }
    for chunk in reports.chunks(20) {
        let segs: Vec<i64> = chunk.iter().map(|r| r.0).collect();
        let speeds: Vec<i64> = chunk.iter().map(|r| r.1).collect();
        engine.append("reports", &[Column::Int(segs), Column::Int(speeds)])?;
        engine.run_until_idle()?;
    }

    println!("rolling average speeds (last window only):");
    if let Some(w) = engine.drain_results(avg_speed)?.last() {
        for row in w.rows() {
            println!("  segment {} avg {:.1} km/h", row[0], row[1]);
        }
    }

    println!("\ncongestion alerts (speed < 30):");
    let mut alerts = 0;
    for w in engine.drain_results(congested)? {
        alerts += w.len();
    }
    println!("  {alerts} alert rows (all on segment 2 as it degrades)");

    println!("\nlifetime report counts per segment:");
    if let Some(w) = engine.drain_results(lifetime)?.last() {
        for row in w.rows() {
            println!("  segment {}: {} reports", row[0], row[1]);
        }
    }
    Ok(())
}
