//! Many standing queries over one stream — the scheduler at work.
//!
//! The Petri-net scheduler (paper §2) fires whichever factories have
//! enough input, so queries with different window geometries coexist on
//! one stream; the basket expires tuples only once *every* query has
//! consumed them. This example also contrasts incremental and
//! re-evaluation factories on the same workload.
//!
//! ```text
//! cargo run --example multi_query
//! ```

use datacell::core::{ExecMode, RegisterOptions};
use datacell::prelude::*;

fn main() -> Result<(), DataCellError> {
    let mut engine = Engine::new();
    engine.create_stream("ticks", &[("sym", DataType::Int), ("price", DataType::Int)])?;

    // Three standing queries with different windows over the same stream.
    let fast = engine
        .register_sql("SELECT sym, max(price) FROM ticks GROUP BY sym WINDOW SIZE 4 SLIDE 2")?;
    let slow = engine
        .register_sql("SELECT sym, avg(price) FROM ticks GROUP BY sym WINDOW SIZE 12 SLIDE 6")?;
    // The same query as `fast` but with re-evaluation, to compare outputs.
    let fast_r = engine.register_sql_with(
        "SELECT sym, max(price) FROM ticks GROUP BY sym WINDOW SIZE 4 SLIDE 2",
        RegisterOptions { mode: ExecMode::Reevaluation, chunker: None },
    )?;

    // A deterministic pseudo-market.
    let mut price = [1000i64, 2000];
    for round in 0..12 {
        let mut syms = Vec::new();
        let mut prices = Vec::new();
        for (s, p) in price.iter_mut().enumerate() {
            *p += ((round * 37 + s as i64 * 11) % 15) - 7;
            syms.push(s as i64);
            prices.push(*p);
        }
        engine.append("ticks", &[Column::Int(syms), Column::Int(prices)])?;
        engine.run_until_idle()?;
    }

    let fast_out = engine.drain_results(fast)?;
    let fast_r_out = engine.drain_results(fast_r)?;
    let slow_out = engine.drain_results(slow)?;

    println!("fast query (size 4, slide 2): {} windows", fast_out.len());
    println!("slow query (size 12, slide 6): {} windows", slow_out.len());

    // Incremental and re-evaluation agree window by window.
    assert_eq!(fast_out.len(), fast_r_out.len());
    for (a, b) in fast_out.iter().zip(&fast_r_out) {
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }
    println!("incremental == re-evaluation on all {} fast windows ✓", fast_out.len());

    for (i, w) in slow_out.iter().enumerate() {
        println!("slow window {i}:");
        for row in w.rows() {
            println!("  sym {} avg price {}", row[0], row[1]);
        }
    }
    Ok(())
}
