//! Offline shim for the `crossbeam` crate: the `channel` subset DataCell
//! uses (`bounded`, `Sender`, `Receiver`, a two-arm `select!`), backed by
//! `std::sync::mpsc`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal API-compatible stand-ins (see `vendor/README.md`).

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    pub struct Sender<T>(pub(crate) mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(pub(crate) mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The message could not be sent because the channel is disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors from [`Sender::try_send`].
    #[derive(Debug)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    /// Errors from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Create a bounded channel with capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Block until the message is accepted or the channel disconnects.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }

        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Two-arm `select!` over one send and one recv operation, in crossbeam's
    /// syntax. Implemented by polling both endpoints; the chosen arm's body
    /// runs *outside* the polling loop so `break`/`continue`/`return` inside
    /// a body target the caller's control flow, as with real crossbeam.
    #[macro_export]
    macro_rules! select {
        (send($tx:expr, $val:expr) -> $sres:pat => $sbody:block recv($rx:expr) -> $rres:pat => $rbody:expr $(,)?) => {
            $crate::select!(send($tx, $val) -> $sres => $sbody, recv($rx) -> $rres => $rbody)
        };
        (send($tx:expr, $val:expr) -> $sres:pat => $sbody:expr, recv($rx:expr) -> $rres:pat => $rbody:expr $(,)?) => {{
            enum __SelectArm<S, R> {
                Send(S),
                Recv(R),
            }
            let mut __pending = Some($val);
            let __arm = loop {
                match $rx.try_recv() {
                    Ok(__v) => break __SelectArm::Recv(Ok(__v)),
                    Err($crate::channel::TryRecvError::Disconnected) => {
                        break __SelectArm::Recv(Err($crate::channel::RecvError))
                    }
                    Err($crate::channel::TryRecvError::Empty) => {}
                }
                match $tx.try_send(__pending.take().expect("value still pending")) {
                    Ok(()) => break __SelectArm::Send(Ok(())),
                    Err($crate::channel::TrySendError::Disconnected(__v)) => {
                        break __SelectArm::Send(Err($crate::channel::SendError(__v)))
                    }
                    Err($crate::channel::TrySendError::Full(__v)) => {
                        __pending = Some(__v);
                        ::std::thread::sleep(::std::time::Duration::from_micros(100));
                    }
                }
            };
            match __arm {
                __SelectArm::Send($sres) => $sbody,
                __SelectArm::Recv($rres) => $rbody,
            }
        }};
    }

    // Let `crossbeam::channel::select!` paths resolve, matching the real crate.
    pub use crate::select;
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, TryRecvError};

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn select_prefers_ready_recv() {
        let (tx, rx) = bounded::<i32>(0); // rendezvous: send never ready
        let (stop_tx, stop_rx) = bounded::<()>(1);
        stop_tx.send(()).unwrap();
        let stopped;
        crate::channel::select! {
            send(tx, 1) -> _res => { panic!("send arm must not fire") },
            recv(stop_rx) -> _ => stopped = true,
        }
        assert!(stopped);
        drop(rx);
    }

    #[test]
    fn select_send_fires_when_capacity_free() {
        let (tx, rx) = bounded::<i32>(1);
        let (_stop_tx, stop_rx) = bounded::<()>(1);
        let sent;
        crate::channel::select! {
            send(tx, 7) -> res => {
                assert!(res.is_ok());
                sent = true;
            }
            recv(stop_rx) -> _ => panic!("recv arm must not fire"),
        }
        assert!(sent);
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn select_body_break_targets_caller_loop() {
        let (tx, rx) = bounded::<i32>(1);
        let (_stop_tx, stop_rx) = bounded::<()>(1);
        let mut rounds = 0;
        while rounds < 10 {
            rounds += 1;
            crate::channel::select! {
                send(tx, rounds) -> res => {
                    if res.is_err() {
                        break;
                    }
                }
                recv(stop_rx) -> _ => break,
            }
            let _ = rx.try_recv();
            if rounds == 3 {
                break;
            }
        }
        assert_eq!(rounds, 3);
    }
}
