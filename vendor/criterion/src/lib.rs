//! Offline shim for the `criterion` crate: the subset DataCell's benches
//! use (`Criterion`, benchmark groups, `BenchmarkId`, `criterion_group!` /
//! `criterion_main!`), with real wall-clock measurement but none of the
//! statistics, plotting, or baseline machinery.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal API-compatible stand-ins (see `vendor/README.md`).
//! Each benchmark is warmed up once, then timed over enough iterations to
//! fill a small measurement budget; the mean is printed per benchmark id.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement normalization, as in real criterion: when set on a group,
/// each benchmark line additionally reports elements (or bytes) per
/// second, computed from the mean iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_budget: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_budget: Duration::from_millis(200), default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one(&id.into(), self.measurement_budget, sample_size, |b| f(b));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the throughput of subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        run_one_with(&full, self.criterion.measurement_budget, samples, self.throughput, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        run_one_with(&full, self.criterion.measurement_budget, samples, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => f.write_str(func),
            (None, Some(p)) => f.write_str(p),
            (None, None) => f.write_str("bench"),
        }
    }
}

/// Passed to the measured closure; `iter` runs and times the routine.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: one untimed run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Aim for `samples` timed runs within the budget.
        let per_sample = self.budget / self.samples.max(1) as u32;
        let iters_per_sample = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += t.elapsed();
            iters += iters_per_sample;
            if total > self.budget {
                break;
            }
        }
        self.mean_ns = Some(total.as_nanos() as f64 / iters.max(1) as f64);
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(id: &str, budget: Duration, samples: usize, f: F) {
    run_one_with(id, budget, samples, None, f)
}

fn run_one_with<F: FnOnce(&mut Bencher)>(
    id: &str,
    budget: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    f: F,
) {
    let mut b = Bencher { budget, samples, mean_ns: None };
    f(&mut b);
    match b.mean_ns {
        Some(ns) => println!("{id:<60} {}{}", format_ns(ns), format_throughput(ns, throughput)),
        None => println!("{id:<60} (no measurement)"),
    }
}

fn format_throughput(mean_ns: f64, throughput: Option<Throughput>) -> String {
    let (count, unit) = match throughput {
        Some(Throughput::Elements(n)) => (n, "elem"),
        Some(Throughput::Bytes(n)) => (n, "B"),
        None => return String::new(),
    };
    let per_sec = count as f64 / (mean_ns / 1_000_000_000.0);
    if per_sec >= 1_000_000.0 {
        format!("  {:>9.2} M{unit}/s", per_sec / 1_000_000.0)
    } else if per_sec >= 1_000.0 {
        format!("  {:>9.2} K{unit}/s", per_sec / 1_000.0)
    } else {
        format!("  {per_sec:>9.0} {unit}/s")
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:>10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:>10.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:>10.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:>10.2} s/iter", ns / 1_000_000_000.0)
    }
}

/// `criterion_group!(name, fn_a, fn_b, ..)` — a function running each bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point generated by `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group_a, group_b, ..)` — the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c =
            Criterion { measurement_budget: Duration::from_millis(5), default_sample_size: 3 };
        let mut g = c.benchmark_group("g");
        g.sample_size(2).bench_with_input(BenchmarkId::new("f", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(format_throughput(1_000.0, None), "");
        // 1000 elements per µs-long iteration = 1e9 elem/s.
        assert_eq!(
            format_throughput(1_000.0, Some(Throughput::Elements(1_000))),
            format!("  {:>9.2} Melem/s", 1000.0)
        );
        assert_eq!(
            format_throughput(1_000_000_000.0, Some(Throughput::Bytes(500))),
            format!("  {:>9.0} B/s", 500.0)
        );
    }
}
