//! Strategies: deterministic generators of random values.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::Range;

/// The RNG threaded through a property run.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// FNV-1a over a test name — stable across runs and platforms.
    pub fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `usize` in `[0, bound)`; 0 for an empty bound.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// A generator of values of one type. The shim has no shrinking, so this is
/// just `generate`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// Strategies are passed by value or reference interchangeably in tests.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Always produces clones of one value — `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` for the primitive types the suite needs.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}
