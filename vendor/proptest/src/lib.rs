//! Offline shim for the `proptest` crate: the subset DataCell's test suite
//! uses — the `proptest!` macro with `#![proptest_config(..)]`, integer
//! range / tuple / `prop::collection::vec` / `prop::sample::select`
//! strategies, and the `prop_assert*` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal API-compatible stand-ins (see `vendor/README.md`).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case number and seed so
//!   it can be replayed deterministically, but is not minimized;
//! * cases are generated from a fixed per-test seed, so runs are fully
//!   deterministic (equivalent to checking in a proptest regression file).

pub mod strategy;

pub mod test_runner {
    pub use crate::strategy::TestRng;

    /// A failed or rejected property case, carried through `Result` so the
    /// `prop_assert*` macros can early-return from inside the case closure.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty length range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.end - self.size.start) + self.size.start;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "cannot select from an empty list");
        Select { items }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};

    /// `prop::collection::vec(..)` / `prop::sample::select(..)` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// The macro behind `proptest! { .. }`: expands each `fn name(arg in strat)`
/// item into a plain `#[test]` that generates `cases` deterministic inputs
/// and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                // Per-test seed from the test name, so distinct properties
                // explore distinct sequences but every run is reproducible.
                let __seed = $crate::strategy::TestRng::hash_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::strategy::TestRng::from_seed(__seed ^ (__case as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "proptest property `{}` failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), __case, __cfg.cases, __seed, __e
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — early-returns a
/// [`test_runner::TestCaseError`] so the runner can report the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: both sides equal `{:?}`", __l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: both sides equal `{:?}`: {}", __l, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0i64..10, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn tuples_and_select(
            pair in (0i64..5, -10i64..0),
            word in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!((0..5).contains(&pair.0));
            prop_assert!((-10..0).contains(&pair.1));
            prop_assert_ne!(word, "d");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::{Strategy, TestRng};
        let strat = crate::collection::vec(0i64..100, 1..20);
        let a: Vec<Vec<i64>> =
            (0..10).map(|i| strat.generate(&mut TestRng::from_seed(i))).collect();
        let b: Vec<Vec<i64>> =
            (0..10).map(|i| strat.generate(&mut TestRng::from_seed(i))).collect();
        assert_eq!(a, b);
    }
}
