//! Offline shim for the `parking_lot` crate: the subset DataCell uses
//! (`Mutex`/`RwLock` with non-poisoning guards), backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal API-compatible stand-ins (see `vendor/README.md`).
//! Swap back to the real crate by repointing `[workspace.dependencies]`.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Non-poisoning mutex: `lock()` returns the guard directly, recovering
/// from poison like `parking_lot` (which has no poisoning at all).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(StdRwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdRwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
