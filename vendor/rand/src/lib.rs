//! Offline shim for the `rand` crate: the subset DataCell's benchmarks use
//! (`rngs::StdRng`, `SeedableRng::seed_from_u64`, `RngExt::random_range`),
//! implemented with xoshiro256** seeded through SplitMix64.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal API-compatible stand-ins (see `vendor/README.md`).
//! Determinism matters more than statistical quality here: workloads are
//! reproducible across runs for a fixed seed, which is all the paper's
//! experiments require.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Sample uniformly from `range` (half-open). Panics if empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 mantissa bits of a uniform u64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `bool`.
    fn random_bool(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept so `use rand::Rng` keeps compiling against the shim.
pub use self::RngExt as Rng;

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and plenty for synthetic workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0i64..1000), b.random_range(0i64..1000));
        }
    }

    #[test]
    fn in_range_and_covers_domain() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0i64..10);
            assert!((0..10).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small domain appear");
    }

    #[test]
    fn negative_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-100i64..100);
            assert!((-100..100).contains(&v));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
